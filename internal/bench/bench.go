// Package bench regenerates the tables and figures of the paper's
// evaluation (Section 6): network statistics (Table 3), the encryption
// parameters CHET selects (Table 4), per-layout latencies for both schemes
// (Tables 5 and 6), the CHET-vs-manual comparison (Figure 5), the
// cost-model-vs-observed correlation (Figure 6), the rotation-keys speedup
// (Figure 7), and the HISA operation microbenchmarks behind Table 1.
// Both cmd/chet-bench and the repository's testing.B benchmarks drive these
// functions.
package bench

import (
	"fmt"
	"math"
	"math/big"
	"strings"
	"time"

	"chet/internal/ckks"
	"chet/internal/core"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
	"chet/internal/tensor"
)

// EvalModels returns the paper's five evaluation networks.
func EvalModels() []*nn.Model { return nn.All() }

// SmallModels returns networks small enough to execute with real lattice
// cryptography in a benchmark run.
func SmallModels() []*nn.Model {
	small, _ := nn.ByName("LeNet-5-small")
	return []*nn.Model{nn.LeNetTiny(), small}
}

// ---------------------------------------------------------------- Table 3

// Table3Row mirrors a row of Table 3.
type Table3Row struct {
	Name             string
	Conv, FC, Act    int
	Flops            int64
	OutputFidelity   float64 // max abs deviation encrypted vs plaintext
	FidelityMeasured bool
}

// Table3 reports the network inventory. When withFidelity is set, each
// network is additionally executed homomorphically on the CKKS noise model
// and the output deviation from plaintext inference is reported (our
// substitute for the paper's accuracy column; see DESIGN.md).
func Table3(models []*nn.Model, withFidelity bool) []Table3Row {
	rows := make([]Table3Row, 0, len(models))
	for _, m := range models {
		lc := m.Circuit.CountLayers()
		row := Table3Row{
			Name:  m.Name,
			Conv:  lc.Conv,
			FC:    lc.Dense,
			Act:   lc.Act,
			Flops: m.Circuit.Flops(),
		}
		if withFidelity {
			row.OutputFidelity = fidelity(m)
			row.FidelityMeasured = true
		}
		rows = append(rows, row)
	}
	return rows
}

// fidelity runs one encrypted inference on the compiled CKKS mock backend
// and returns the max abs deviation from plaintext inference.
func fidelity(m *nn.Model) float64 {
	comp, err := core.Compile(m.Circuit, core.Options{Scheme: core.SchemeCKKS})
	if err != nil {
		return math.NaN()
	}
	b, err := core.BuildBackend(comp, nil)
	if err != nil {
		return math.NaN()
	}
	img := nn.SyntheticImage(m.InputShape, 11)
	want := m.Circuit.Evaluate(img)
	sc := comp.Options.Scales
	plan := htc.PlanFor(m.Circuit, comp.Best.Policy)
	enc := htc.EncryptTensor(b, img, plan, sc)
	got := htc.DecryptTensor(b, htc.Execute(b, m.Circuit, enc, comp.Best.Policy, sc))
	maxErr := 0.0
	for i := range want.Data {
		if e := math.Abs(got.Data[i] - want.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

// RenderTable3 formats the rows like the paper's table.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %5s %4s %4s %12s %12s\n", "Network", "Conv", "FC", "Act", "# FP ops", "fidelity")
	for _, r := range rows {
		fid := "-"
		if r.FidelityMeasured {
			fid = fmt.Sprintf("%.2e", r.OutputFidelity)
		}
		fmt.Fprintf(&sb, "%-18s %5d %4d %4d %12d %12s\n", r.Name, r.Conv, r.FC, r.Act, r.Flops, fid)
	}
	return sb.String()
}

// ---------------------------------------------------------------- Table 4

// Table4Row mirrors Table 4: the parameters CHET-HEAAN selects.
type Table4Row struct {
	Name      string
	LogN      int
	LogQ      float64
	ScaleBits [4]int // log2 of Pc, Pw, Pu, Pm
}

// Table4Options tunes the (expensive) profile-guided scale search.
type Table4Options struct {
	UseScaleSearch bool
	SearchStep     int
	Tolerance      float64
}

// Table4 reproduces the parameter-selection table for the CKKS (HEAAN)
// target. With UseScaleSearch, the fixed-point factors come from the
// profile-guided search; otherwise the compiler defaults are reported.
func Table4(models []*nn.Model, opts Table4Options) ([]Table4Row, error) {
	rows := make([]Table4Row, 0, len(models))
	for _, m := range models {
		copts := core.Options{Scheme: core.SchemeCKKS}
		if opts.UseScaleSearch {
			search := core.ScaleSearch{Step: opts.SearchStep, Tolerance: opts.Tolerance}
			inputs := []*tensor.Tensor{nn.SyntheticImage(m.InputShape, 21)}
			sc, err := core.SelectScales(m.Circuit, inputs, search, core.Options{
				Scheme:   core.SchemeCKKS,
				Policies: []htc.LayoutPolicy{htc.PolicyCHW},
			})
			if err != nil {
				return nil, fmt.Errorf("scale search for %s: %w", m.Name, err)
			}
			copts.Scales = sc
		}
		comp, err := core.Compile(m.Circuit, copts)
		if err != nil {
			return nil, fmt.Errorf("compiling %s: %w", m.Name, err)
		}
		sc := comp.Options.Scales
		rows = append(rows, Table4Row{
			Name: m.Name,
			LogN: comp.Best.LogN,
			LogQ: comp.Best.LogQ,
			ScaleBits: [4]int{
				int(math.Round(math.Log2(sc.Pc))),
				int(math.Round(math.Log2(sc.Pw))),
				int(math.Round(math.Log2(sc.Pu))),
				int(math.Round(math.Log2(sc.Pm))),
			},
		})
	}
	return rows, nil
}

// RenderTable4 formats the parameter table.
func RenderTable4(rows []Table4Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %8s %8s %22s\n", "Network", "N", "log(Q)", "log(Pc,Pw,Pu,Pm)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %8d %8.0f %8d %4d %4d %4d\n",
			r.Name, 1<<uint(r.LogN), r.LogQ,
			r.ScaleBits[0], r.ScaleBits[1], r.ScaleBits[2], r.ScaleBits[3])
	}
	return sb.String()
}

// ----------------------------------------------------------- Tables 5 & 6

// LayoutRow gives the estimated latency of each layout policy for one
// network (seconds), with the compiler's choice marked.
type LayoutRow struct {
	Name    string
	Seconds [4]float64 // indexed by htc.AllPolicies order
	Best    htc.LayoutPolicy
}

// LayoutTable reproduces Table 5 (scheme = RNS / SEAL) or Table 6
// (scheme = CKKS / HEAAN): the cost-model latency of every layout policy.
func LayoutTable(models []*nn.Model, scheme core.Scheme) ([]LayoutRow, error) {
	rows := make([]LayoutRow, 0, len(models))
	for _, m := range models {
		comp, err := core.Compile(m.Circuit, core.Options{Scheme: scheme})
		if err != nil {
			return nil, fmt.Errorf("compiling %s: %w", m.Name, err)
		}
		var row LayoutRow
		row.Name = m.Name
		row.Best = comp.Best.Policy
		for _, res := range comp.Trace {
			for i, p := range htc.AllPolicies {
				if res.Policy == p {
					row.Seconds[i] = res.EstimatedCost / 1e6
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderLayoutTable formats a layout table. A dash marks a policy that did
// not compile (no secure ring degree fits its modulus consumption).
func RenderLayoutTable(rows []LayoutRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %12s %12s %12s %12s   best\n",
		"Network", "HW", "CHW", "HW-conv", "CHW-fc")
	cell := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", v)
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %12s %12s %12s %12s   %v\n",
			r.Name, cell(r.Seconds[0]), cell(r.Seconds[1]), cell(r.Seconds[2]), cell(r.Seconds[3]), r.Best)
	}
	return sb.String()
}

// ---------------------------------------------------------------- Figure 5

// Fig5Row compares CHET-compiled circuits against the manual baseline
// (seconds, cost-model latency).
type Fig5Row struct {
	Name        string
	CHETSEAL    float64
	CHETHEAAN   float64
	ManualHEAAN float64
}

// Figure5 reproduces the headline comparison. Manual-HEAAN models what the
// paper's experts started from: fixed HW layout, power-of-two rotation keys
// only, conservative 2^40 scales everywhere.
func Figure5(models []*nn.Model) ([]Fig5Row, error) {
	rows := make([]Fig5Row, 0, len(models))
	manualScales := htc.Scales{
		Pc: math.Exp2(40), Pw: math.Exp2(40), Pu: math.Exp2(40), Pm: math.Exp2(40),
	}
	for _, m := range models {
		seal, err := core.Compile(m.Circuit, core.Options{Scheme: core.SchemeRNS})
		if err != nil {
			return nil, err
		}
		heaan, err := core.Compile(m.Circuit, core.Options{Scheme: core.SchemeCKKS})
		if err != nil {
			return nil, err
		}
		manual, err := core.Compile(m.Circuit, core.Options{
			Scheme:                  core.SchemeCKKS,
			Policies:                []htc.LayoutPolicy{htc.PolicyHW},
			PowerOfTwoRotationsOnly: true,
			Scales:                  manualScales,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{
			Name:        m.Name,
			CHETSEAL:    seal.Best.EstimatedCost / 1e6,
			CHETHEAAN:   heaan.Best.EstimatedCost / 1e6,
			ManualHEAAN: manual.Best.EstimatedCost / 1e6,
		})
	}
	return rows, nil
}

// RenderFigure5 formats the comparison.
func RenderFigure5(rows []Fig5Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %14s %14s %14s\n", "Network", "CHET-SEAL(s)", "CHET-HEAAN(s)", "Manual-HEAAN(s)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %14.1f %14.1f %14.1f\n", r.Name, r.CHETSEAL, r.CHETHEAAN, r.ManualHEAAN)
	}
	return sb.String()
}

// ---------------------------------------------------------------- Figure 6

// Fig6Point is one (estimated cost, observed latency) pair.
type Fig6Point struct {
	Name     string
	Policy   htc.LayoutPolicy
	EstUS    float64 // cost-model estimate (us)
	Observed float64 // measured wall-clock on the real RNS backend (s)
}

// Figure6 measures real RNS-CKKS execution latency for every layout policy
// of the given (small) networks and pairs it with the cost-model estimate.
// Small insecure rings keep the measurement tractable; the correlation, not
// the absolute latency, is the result.
func Figure6(models []*nn.Model, logN int) ([]Fig6Point, error) {
	var points []Fig6Point
	for _, m := range models {
		for _, policy := range htc.AllPolicies {
			comp, err := core.Compile(m.Circuit, core.Options{
				Scheme:       core.SchemeRNS,
				SecurityBits: -1,
				MinLogN:      logN,
				MaxLogN:      logN,
				Policies:     []htc.LayoutPolicy{policy},
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", m.Name, policy, err)
			}
			b, err := core.BuildBackend(comp, ring.NewTestPRNG(17))
			if err != nil {
				return nil, err
			}
			img := nn.SyntheticImage(m.InputShape, 23)
			sc := comp.Options.Scales
			plan := htc.PlanFor(m.Circuit, policy)
			enc := htc.EncryptTensor(b, img, plan, sc)
			start := time.Now()
			htc.Execute(b, m.Circuit, enc, policy, sc)
			elapsed := time.Since(start).Seconds()
			points = append(points, Fig6Point{
				Name:     m.Name,
				Policy:   policy,
				EstUS:    comp.Best.EstimatedCost,
				Observed: elapsed,
			})
		}
	}
	return points, nil
}

// LogLogCorrelation returns the Pearson correlation of log(estimate) vs
// log(observed), the quantity Figure 6 visualizes.
func LogLogCorrelation(points []Fig6Point) float64 {
	n := float64(len(points))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, syy, sxy float64
	for _, p := range points {
		x := math.Log(p.EstUS)
		y := math.Log(p.Observed)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	num := n*sxy - sx*sy
	den := math.Sqrt((n*sxx - sx*sx) * (n*syy - sy*sy))
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// RenderFigure6 formats the scatter data and correlation.
func RenderFigure6(points []Fig6Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-20s %14s %14s\n", "Network", "Layout", "est cost", "observed (s)")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-14s %-20v %14.0f %14.3f\n", p.Name, p.Policy, p.EstUS, p.Observed)
	}
	fmt.Fprintf(&sb, "log-log Pearson correlation: %.3f\n", LogLogCorrelation(points))
	return sb.String()
}

// ------------------------------------------------------ Parallel execution

// SpeedupRow reports serial-vs-parallel end-to-end homomorphic inference
// wall-clock for one network, alongside the cost model's serial and
// T-thread estimates.
type SpeedupRow struct {
	Name            string
	Policy          htc.LayoutPolicy
	Workers         int
	SerialSeconds   float64
	ParallelSeconds float64
	Speedup         float64
	SerialEstS      float64 // serial cost-model estimate (s)
	ThreadEstS      float64 // T-thread cost-model estimate at T=Workers (s)
}

// ParallelSpeedup measures real RNS-CKKS inference with the serial engine
// and with a worker pool of the given size, on small insecure rings (the
// Figure 6 methodology). Parallel execution is bit-identical to serial, so
// the wall-clock ratio is a pure engine comparison. The measured speedup
// depends on the machine: a single-core host shows ~1.0x, the paper's
// 16-core evaluation machine approaches the T-thread cost-model ratio.
func ParallelSpeedup(models []*nn.Model, logN, workers int) ([]SpeedupRow, error) {
	var rows []SpeedupRow
	for _, m := range models {
		copts := core.Options{
			Scheme:       core.SchemeRNS,
			SecurityBits: -1,
			MinLogN:      logN,
			MaxLogN:      logN,
		}
		comp, err := core.Compile(m.Circuit, copts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		copts.CostThreads = workers
		compT, err := core.Compile(m.Circuit, copts)
		if err != nil {
			return nil, fmt.Errorf("%s (T=%d): %w", m.Name, workers, err)
		}

		b, err := core.BuildBackend(comp, ring.NewTestPRNG(17))
		if err != nil {
			return nil, err
		}
		img := nn.SyntheticImage(m.InputShape, 23)
		sc := comp.Options.Scales
		policy := comp.Best.Policy
		plan := htc.PlanFor(m.Circuit, policy)
		enc := htc.EncryptTensor(b, img, plan, sc)

		start := time.Now()
		htc.Execute(b, m.Circuit, enc, policy, sc)
		serial := time.Since(start).Seconds()

		start = time.Now()
		htc.ExecuteOpts(b, m.Circuit, enc, policy, sc, htc.ExecOptions{Workers: workers})
		parallel := time.Since(start).Seconds()

		rows = append(rows, SpeedupRow{
			Name:            m.Name,
			Policy:          policy,
			Workers:         workers,
			SerialSeconds:   serial,
			ParallelSeconds: parallel,
			Speedup:         serial / parallel,
			SerialEstS:      comp.Best.EstimatedCost / 1e6,
			ThreadEstS:      compT.Best.EstimatedCost / 1e6,
		})
	}
	return rows, nil
}

// RenderSpeedup formats the serial-vs-parallel comparison.
func RenderSpeedup(rows []SpeedupRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-20s %3s %10s %10s %8s %11s %11s\n",
		"Network", "Layout", "T", "serial(s)", "parallel(s)", "speedup", "est T=1(s)", "est T=T(s)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %-20v %3d %10.3f %10.3f %7.2fx %11.1f %11.1f\n",
			r.Name, r.Policy, r.Workers, r.SerialSeconds, r.ParallelSeconds,
			r.Speedup, r.SerialEstS, r.ThreadEstS)
	}
	return sb.String()
}

// ---------------------------------------------------------------- Figure 7

// Fig7Row is the speedup of CHET's rotation-keys selection over the
// power-of-two default for one network and scheme.
type Fig7Row struct {
	Name    string
	Scheme  core.Scheme
	Speedup float64
	// Rotation operation counts behind the speedup.
	RotOpsSelected, RotOpsPow2 int
}

// Figure7 compares compiled cost with CHET-selected rotation keys against
// the power-of-two default keys.
func Figure7(models []*nn.Model, schemes []core.Scheme) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, scheme := range schemes {
		for _, m := range models {
			opt, err := core.Compile(m.Circuit, core.Options{Scheme: scheme})
			if err != nil {
				return nil, err
			}
			base, err := core.Compile(m.Circuit, core.Options{
				Scheme:                  scheme,
				PowerOfTwoRotationsOnly: true,
				Policies:                []htc.LayoutPolicy{opt.Best.Policy},
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig7Row{
				Name:           m.Name,
				Scheme:         scheme,
				Speedup:        base.Best.EstimatedCost / opt.Best.EstimatedCost,
				RotOpsSelected: opt.Best.RotationOps,
				RotOpsPow2:     base.Best.RotationOps,
			})
		}
	}
	return rows, nil
}

// GeomeanSpeedup aggregates Figure 7 the way the paper reports it.
func GeomeanSpeedup(rows []Fig7Row) float64 {
	if len(rows) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, r := range rows {
		sum += math.Log(r.Speedup)
	}
	return math.Exp(sum / float64(len(rows)))
}

// RenderFigure7 formats the speedups.
func RenderFigure7(rows []Fig7Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %-18s %9s %12s %12s\n", "Network", "Scheme", "speedup", "rot(CHET)", "rot(pow2)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %-18v %8.2fx %12d %12d\n",
			r.Name, r.Scheme, r.Speedup, r.RotOpsSelected, r.RotOpsPow2)
	}
	fmt.Fprintf(&sb, "geometric-mean speedup: %.2fx\n", GeomeanSpeedup(rows))
	return sb.String()
}

// ---------------------------------------------------------------- Table 1

// Table1Row reports measured HISA primitive latencies on the real RNS-CKKS
// backend for one (N, r) configuration.
type Table1Row struct {
	LogN, Primes                   int
	AddUS, ScalarMulUS, PlainMulUS float64
	CtMulUS, RotateUS, RescaleUS   float64
}

// Table1 microbenchmarks the RNS-CKKS backend, verifying the asymptotic
// behaviour of Table 1's RNS column (addition and plaintext multiplication
// scale with N*r; ciphertext multiplication and rotation with N*logN*r^2).
func Table1(configs [][2]int) ([]Table1Row, error) {
	var rows []Table1Row
	for _, cfg := range configs {
		logN, primes := cfg[0], cfg[1]
		row, err := measureOps(logN, primes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func measureOps(logN, primes int) (Table1Row, error) {
	logQ := make([]int, primes)
	for i := range logQ {
		logQ[i] = 40
	}
	logQ[0] = 50
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: logN, LogQ: logQ, LogP: 50, LogScale: 40,
	})
	if err != nil {
		return Table1Row{}, err
	}
	b := hisa.NewRNSBackend(hisa.RNSConfig{
		Params:    params,
		PRNG:      ring.NewTestPRNG(29),
		Rotations: []int{3},
	})
	slots := b.Slots()
	vals := make([]float64, slots)
	for i := range vals {
		vals[i] = 0.5
	}
	scale := math.Exp2(40)
	pt := b.Encode(vals, scale)
	ct := b.Encrypt(pt)
	ct2 := b.Encrypt(pt)

	row := Table1Row{LogN: logN, Primes: primes}
	row.AddUS = timeOp(func() { b.Add(ct, ct2) })
	row.ScalarMulUS = timeOp(func() { b.MulScalar(ct, 1.5, scale) })
	row.PlainMulUS = timeOp(func() { b.MulPlain(ct, pt) })
	row.CtMulUS = timeOp(func() { b.Mul(ct, ct2) })
	row.RotateUS = timeOp(func() { b.RotLeft(ct, 3) })

	prod := b.Mul(ct, ct2)
	d := b.MaxRescale(prod, new(big.Int).Lsh(big.NewInt(1), 41))
	row.RescaleUS = timeOp(func() { b.Rescale(prod, d) })
	return row, nil
}

// timeOp measures the median-ish latency of f in microseconds.
func timeOp(f func()) float64 {
	f() // warm up
	const reps = 3
	best := math.MaxFloat64
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if e := float64(time.Since(start).Microseconds()); e < best {
			best = e
		}
	}
	return best
}

// RenderTable1 formats the microbenchmark table.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s %3s %10s %10s %10s %10s %10s %10s\n",
		"N", "r", "add(us)", "sMul(us)", "pMul(us)", "ctMul(us)", "rot(us)", "rescale(us)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%6d %3d %10.0f %10.0f %10.0f %10.0f %10.0f %10.0f\n",
			1<<uint(r.LogN), r.Primes, r.AddUS, r.ScalarMulUS, r.PlainMulUS,
			r.CtMulUS, r.RotateUS, r.RescaleUS)
	}
	return sb.String()
}
