package bench

import (
	"math"
	"strings"
	"testing"

	"chet/internal/core"
	"chet/internal/nn"
)

// smallSet keeps unit tests fast: the full five-network sweep runs in
// cmd/chet-bench and the repository benchmarks.
func smallSet() []*nn.Model {
	small, _ := nn.ByName("LeNet-5-small")
	return []*nn.Model{nn.LeNetTiny(), small}
}

func TestTable3(t *testing.T) {
	rows := Table3(smallSet(), false)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Flops <= 0 || r.Conv == 0 {
			t.Fatalf("implausible row %+v", r)
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "LeNet-5-small") {
		t.Fatalf("render missing model name:\n%s", out)
	}
}

func TestTable3Fidelity(t *testing.T) {
	rows := Table3([]*nn.Model{nn.LeNetTiny()}, true)
	if !rows[0].FidelityMeasured {
		t.Fatal("fidelity not measured")
	}
	if math.IsNaN(rows[0].OutputFidelity) || rows[0].OutputFidelity > 0.1 {
		t.Fatalf("fidelity %g implausible", rows[0].OutputFidelity)
	}
}

func TestTable4(t *testing.T) {
	rows, err := Table4(smallSet(), Table4Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.LogN < 12 || r.LogQ <= 0 {
			t.Fatalf("implausible parameters %+v", r)
		}
	}
	// Deeper network consumes more modulus.
	if rows[1].LogQ <= rows[0].LogQ {
		t.Fatalf("LeNet-5-small logQ %.0f should exceed LeNet-tiny %.0f", rows[1].LogQ, rows[0].LogQ)
	}
	if s := RenderTable4(rows); !strings.Contains(s, "log(Q)") {
		t.Fatal("render header missing")
	}
}

func TestLayoutTables(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeRNS, core.SchemeCKKS} {
		rows, err := LayoutTable(smallSet(), scheme)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			for i, s := range r.Seconds {
				if s <= 0 {
					t.Fatalf("%v %s: policy %d has no estimate", scheme, r.Name, i)
				}
			}
		}
		if s := RenderLayoutTable(rows); !strings.Contains(s, "best") {
			t.Fatal("render missing best column")
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper's headline: CHET beats the manual baseline, and the
		// RNS-CKKS target beats the CKKS target.
		if !(r.ManualHEAAN > r.CHETHEAAN) {
			t.Fatalf("%s: manual (%.1fs) should be slower than CHET-HEAAN (%.1fs)",
				r.Name, r.ManualHEAAN, r.CHETHEAAN)
		}
		if !(r.CHETHEAAN > r.CHETSEAL) {
			t.Fatalf("%s: CHET-HEAAN (%.1fs) should be slower than CHET-SEAL (%.1fs)",
				r.Name, r.CHETHEAAN, r.CHETSEAL)
		}
	}
}

func TestFigure6CorrelationOnTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice execution is slow; run without -short")
	}
	points, err := Figure6([]*nn.Model{nn.LeNetTiny()}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	for _, p := range points {
		if p.Observed <= 0 || p.EstUS <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestFigure7SpeedupAboveOne(t *testing.T) {
	rows, err := Figure7(smallSet(), []core.Scheme{core.SchemeRNS, core.SchemeCKKS})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Fatalf("%s/%v: speedup %.2f should exceed 1", r.Name, r.Scheme, r.Speedup)
		}
		if r.RotOpsPow2 <= r.RotOpsSelected {
			t.Fatalf("%s/%v: pow2 rotations %d should exceed selected %d",
				r.Name, r.Scheme, r.RotOpsPow2, r.RotOpsSelected)
		}
	}
	g := GeomeanSpeedup(rows)
	if g <= 1 || math.IsNaN(g) {
		t.Fatalf("geomean %g", g)
	}
	if s := RenderFigure7(rows); !strings.Contains(s, "geometric-mean") {
		t.Fatal("render missing geomean")
	}
}

func TestTable1Microbench(t *testing.T) {
	if testing.Short() {
		t.Skip("microbenchmarks are slow; run without -short")
	}
	rows, err := Table1([][2]int{{11, 2}, {11, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// The r^2 law: rotation at r=4 should cost clearly more than at r=2.
	if rows[1].RotateUS <= rows[0].RotateUS {
		t.Fatalf("rotation cost did not grow with r: %v vs %v", rows[1].RotateUS, rows[0].RotateUS)
	}
	if s := RenderTable1(rows); !strings.Contains(s, "rot(us)") {
		t.Fatal("render missing header")
	}
}

func TestLogLogCorrelation(t *testing.T) {
	pts := []Fig6Point{
		{EstUS: 1, Observed: 10},
		{EstUS: 10, Observed: 100},
		{EstUS: 100, Observed: 1000},
	}
	if c := LogLogCorrelation(pts); math.Abs(c-1) > 1e-9 {
		t.Fatalf("perfect log-linear data should correlate 1.0, got %g", c)
	}
	if !math.IsNaN(LogLogCorrelation(pts[:1])) {
		t.Fatal("single point should yield NaN")
	}
}
