package bench

import "testing"

// TestRingBenchSmoke runs the ring-rewrite experiment on a tiny insecure
// ring and checks the result is fully populated and internally consistent.
func TestRingBenchSmoke(t *testing.T) {
	res, err := RingBench(10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogN != 10 || res.Primes != 4 || res.Level != 3 {
		t.Fatalf("geometry: %+v", res)
	}
	for name, v := range map[string]float64{
		"greedy":       res.GreedyNSOp,
		"unfused":      res.UnfusedNSOp,
		"fused":        res.FusedNSOp,
		"ntt serial":   res.NTTSerialNS,
		"ntt parallel": res.NTTParallelNS,
	} {
		if v <= 0 {
			t.Fatalf("%s timing not populated: %v", name, v)
		}
	}
	if res.KeySwitchSpeedup != res.BaselineGreedyNSOp/res.FusedNSOp {
		t.Fatalf("key-switch speedup inconsistent: %v", res)
	}
	// The pooled kernels must be allocation-free in steady state (the exact
	// gate is ring.TestRingKernelAllocs; this catches gross regressions that
	// would invalidate the experiment's premise).
	if res.HotPathAllocs > 4 {
		t.Fatalf("hot ring kernels allocate %.1f mallocs/op", res.HotPathAllocs)
	}
	if len(res.TopSpansUnfused) == 0 || len(res.TopSpansFused) == 0 {
		t.Fatal("top spans not populated")
	}
	if out := RenderRing(res); out == "" {
		t.Fatal("empty render")
	}

	if _, err := RingBench(10, 2, 1); err == nil {
		t.Fatal("expected an error for a 2-prime chain")
	}
}
