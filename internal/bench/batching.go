package bench

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"chet/internal/core"
	"chet/internal/nn"
	"chet/internal/ring"
	"chet/internal/serve"
	"chet/internal/tensor"
)

// BatchingRow records served throughput at one batch capacity: the model is
// recompiled with Options.Batch = Batch, a loopback server is started, and a
// client-packed InferBatch round trip carrying Batch images is timed.
type BatchingRow struct {
	Batch int `json:"batch"`
	LogN  int `json:"log_n"`
	// SecondsPerRequest is the best-of-reps wall time of one served batched
	// round trip (encode, ship, evaluate once, ship back).
	SecondsPerRequest float64 `json:"seconds_per_request"`
	ImagesPerSec      float64 `json:"images_per_sec"`
	// Speedup is ImagesPerSec relative to the Batch=1 row.
	Speedup float64 `json:"speedup_vs_unbatched"`
}

// BatchingResult is the machine-readable output of the batching experiment
// (BENCH_batching.json).
type BatchingResult struct {
	Model            string        `json:"model"`
	MinLogN, MaxLogN int           `json:"-"`
	Rows             []BatchingRow `json:"rows"`
}

// BatchingBench measures served images/sec across batch capacities on the
// real RNS-CKKS backend over a loopback TCP server. Batching packs B images
// into the slot lanes of one ciphertext, so the homomorphic evaluation —
// which dominates the round trip — is paid once per batch instead of once
// per image; throughput should grow near-linearly in B until the lane
// footprint forces a larger ring. batches must start with 1 (the speedup
// baseline).
func BatchingBench(model *nn.Model, batches []int, minLogN, maxLogN int) (BatchingResult, error) {
	if len(batches) == 0 || batches[0] != 1 {
		return BatchingResult{}, fmt.Errorf("bench: batching experiment needs batches starting at 1, got %v", batches)
	}
	res := BatchingResult{Model: model.Name, MinLogN: minLogN, MaxLogN: maxLogN}
	for _, B := range batches {
		comp, err := core.Compile(model.Circuit, core.Options{
			Scheme:       core.SchemeRNS,
			SecurityBits: -1,
			MinLogN:      minLogN,
			MaxLogN:      maxLogN,
			Batch:        B,
		})
		if err != nil {
			return res, fmt.Errorf("bench: compiling %s with batch %d: %w", model.Name, B, err)
		}
		sec, err := timeServedBatch(comp, model.InputShape, B)
		if err != nil {
			return res, fmt.Errorf("bench: serving %s with batch %d: %w", model.Name, B, err)
		}
		row := BatchingRow{
			Batch:             B,
			LogN:              comp.Best.LogN,
			SecondsPerRequest: sec,
			ImagesPerSec:      float64(B) / sec,
		}
		if len(res.Rows) == 0 {
			row.Speedup = 1
		} else {
			row.Speedup = row.ImagesPerSec / res.Rows[0].ImagesPerSec
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// timeServedBatch runs one compiled configuration end to end: loopback
// server, session handshake, then the best-of-3 wall time of a batched
// inference round trip (client-side encryption and decryption excluded —
// they are per-image work the server never sees).
func timeServedBatch(comp *core.Compiled, inputShape []int, B int) (float64, error) {
	s, err := serve.New(serve.Config{Compiled: comp, MaxBatch: B})
	if err != nil {
		return 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go s.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	c, err := serve.Dial(ln.Addr().String(), serve.ClientConfig{Compiled: comp, PRNG: ring.NewTestPRNG(41)})
	if err != nil {
		return 0, err
	}
	defer c.Close()

	imgs := make([]*tensor.Tensor, B)
	for i := range imgs {
		imgs[i] = nn.SyntheticImage(inputShape, uint64(60+i))
	}
	in := c.EncryptBatch(imgs)

	var rtErr error
	ns := timeBatch(func() {
		if _, err := c.InferBatch(in, B); err != nil && rtErr == nil {
			rtErr = err
		}
	})
	if rtErr != nil {
		return 0, rtErr
	}
	return ns / 1e9, nil
}

// RenderBatching formats the throughput sweep.
func RenderBatching(r BatchingResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "served batched inference: %s (loopback TCP, real RNS-CKKS)\n", r.Model)
	fmt.Fprintf(&sb, "%5s %6s %12s %12s %9s\n", "batch", "N", "s/request", "images/sec", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%5d %6d %12.3f %12.2f %8.2fx\n",
			row.Batch, 1<<uint(row.LogN), row.SecondsPerRequest, row.ImagesPerSec, row.Speedup)
	}
	return sb.String()
}
