package nn

import (
	"math"
	"testing"

	"chet/internal/circuit"
	"chet/internal/hisa"
	"chet/internal/htc"
)

func TestAllModelsBuildAndEvaluate(t *testing.T) {
	for _, m := range All() {
		img := SyntheticImage(m.InputShape, 1)
		out := m.Circuit.Evaluate(img)
		if out.Size() == 0 {
			t.Fatalf("%s: empty output", m.Name)
		}
		for i, v := range out.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: output %d is %v", m.Name, i, v)
			}
			if math.Abs(v) > 1e6 {
				t.Fatalf("%s: output %d = %g; magnitudes must stay bounded for FHE", m.Name, i, v)
			}
		}
		if m.Circuit.Flops() <= 0 {
			t.Fatalf("%s: no FLOPs", m.Name)
		}
	}
}

func TestTable3LayerCounts(t *testing.T) {
	// Layer counts of Table 3 (conv / FC / activations).
	want := map[string][3]int{
		"LeNet-5-small":  {2, 2, 4},
		"LeNet-5-medium": {2, 2, 4},
		"LeNet-5-large":  {2, 2, 4},
		"Industrial":     {5, 2, 6},
		// 14 conv ops implement the paper's "10 layers": each Fire module's
		// two expand convolutions run in parallel and count as one layer.
		"SqueezeNet-CIFAR": {14, 0, 9},
	}
	for _, m := range All() {
		lc := m.Circuit.CountLayers()
		w := want[m.Name]
		if lc.Conv != w[0] || lc.Dense != w[1] || lc.Act != w[2] {
			t.Fatalf("%s: conv/fc/act = %d/%d/%d, want %d/%d/%d",
				m.Name, lc.Conv, lc.Dense, lc.Act, w[0], w[1], w[2])
		}
	}
}

func TestModelSizesAreOrdered(t *testing.T) {
	small := LeNet5Small().Circuit.Flops()
	medium := LeNet5Medium().Circuit.Flops()
	large := LeNet5Large().Circuit.Flops()
	if !(small < medium && medium < large) {
		t.Fatalf("LeNet FLOPs not ordered: %d, %d, %d", small, medium, large)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"LeNet-5-small", "SqueezeNet-CIFAR", "LeNet-tiny"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("AlexNet"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestSyntheticImageDeterministic(t *testing.T) {
	a := SyntheticImage([]int{1, 8, 8}, 42)
	b := SyntheticImage([]int{1, 8, 8}, 42)
	c := SyntheticImage([]int{1, 8, 8}, 43)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must give identical images")
		}
		if a.Data[i] < 0 || a.Data[i] >= 1 {
			t.Fatalf("pixel %g out of [0,1)", a.Data[i])
		}
	}
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave the same image")
	}
}

func TestModelsRunHomomorphicallyOnRef(t *testing.T) {
	// Every evaluation network must execute through the homomorphic tensor
	// runtime (functional oracle backend) and match plaintext inference.
	for _, m := range []*Model{LeNet5Small(), Industrial(), SqueezeNetCIFAR()} {
		img := SyntheticImage(m.InputShape, 2)
		want := m.Circuit.Evaluate(img)

		b := hisa.NewRefBackend(8192)
		sc := htc.DefaultScales()
		policy := htc.PolicyCHW
		in := htc.EncryptTensor(b, img, htc.PlanFor(m.Circuit, policy), sc)
		out := htc.Execute(b, m.Circuit, in, policy, sc)
		got := htc.DecryptTensor(b, out)
		if got.Size() != want.Size() {
			t.Fatalf("%s: output size %d want %d", m.Name, got.Size(), want.Size())
		}
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-4 {
				t.Fatalf("%s: output %d = %g, want %g", m.Name, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestSqueezeNetUsesFireModules(t *testing.T) {
	m := SqueezeNetCIFAR()
	concats := 0
	for _, n := range m.Circuit.Nodes {
		if n.Kind == circuit.OpConcat {
			concats++
		}
	}
	if concats != 4 {
		t.Fatalf("SqueezeNet-CIFAR has %d Fire concatenations, want 4", concats)
	}
	if m.Circuit.Output.OutShape[0] != 10 {
		t.Fatalf("classifier output %v, want 10 classes", m.Circuit.Output.OutShape)
	}
}
