// Package nn defines the HE-compatible convolutional neural networks of the
// paper's evaluation (Table 3): three LeNet-5 variants for MNIST-sized
// inputs, the Industrial binary classifier (5 conv + 2 FC layers), and
// SqueezeNet-CIFAR with four Fire modules. All activations are the paper's
// learnable polynomial f(x) = a*x^2 + b*x and all pooling is average
// pooling, the standard HE-compatibility transformations.
//
// The paper's models carry trained weights that are not public; this
// package substitutes deterministic, seeded, He-initialized weights with
// the same architecture (see DESIGN.md). Accuracy experiments become
// output-fidelity experiments: encrypted versus unencrypted inference of
// identical networks.
package nn

import (
	"fmt"
	"math"

	"chet/internal/circuit"
	"chet/internal/ring"
	"chet/internal/tensor"
)

// Model bundles a named tensor circuit with its input schema.
type Model struct {
	Name       string
	Circuit    *circuit.Circuit
	InputShape []int
	// Description matches the Table 3 row.
	Description string
}

// weightGen produces deterministic He-initialized weights.
type weightGen struct {
	prng ring.PRNG
}

func newWeightGen(seed uint64) *weightGen {
	return &weightGen{prng: ring.NewTestPRNG(seed)}
}

// normal returns a standard normal sample.
func (g *weightGen) normal() float64 {
	for {
		u1 := float64(g.prng.Uint64()>>11) / (1 << 53)
		u2 := float64(g.prng.Uint64()>>11) / (1 << 53)
		if u1 == 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// conv samples OIHW filters with He initialization.
func (g *weightGen) conv(cout, cin, kh, kw int) *tensor.Tensor {
	t := tensor.New(cout, cin, kh, kw)
	std := math.Sqrt(2.0 / float64(cin*kh*kw))
	for i := range t.Data {
		t.Data[i] = g.normal() * std
	}
	return t
}

// dense samples a [out, in] matrix with He initialization.
func (g *weightGen) dense(out, in int) *tensor.Tensor {
	t := tensor.New(out, in)
	std := math.Sqrt(2.0 / float64(in))
	for i := range t.Data {
		t.Data[i] = g.normal() * std
	}
	return t
}

// denseRowNorm samples a [out, in] matrix and rescales every row to an
// exact L2 norm. For a random unit row w and an input x, E[(w·x)²] =
// ‖x‖²/in, so the layer's gain is pinned at norm/√in per entry — activations
// stay O(1) through arbitrarily deep stacks instead of drifting with the
// He-sample variance, which matters when every layer's output must respect
// the bootstrap residual bound.
func (g *weightGen) denseRowNorm(out, in int, norm float64) *tensor.Tensor {
	t := g.dense(out, in)
	for r := 0; r < out; r++ {
		row := t.Data[r*in : (r+1)*in]
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		scale := norm / math.Sqrt(s)
		for i := range row {
			row[i] *= scale
		}
	}
	return t
}

// bias samples a small bias vector.
func (g *weightGen) bias(n int) *tensor.Tensor {
	t := tensor.New(n)
	for i := range t.Data {
		t.Data[i] = g.normal() * 0.05
	}
	return t
}

// Activation coefficients mimicking the learned f(x) = a*x^2 + b*x: a small
// quadratic term keeps magnitudes bounded through depth.
const actA, actB = 0.125, 0.75

// lenet builds a LeNet-5-style network: two convolutions with activation
// and average pooling, then two dense layers.
func lenet(name string, c1, c2, fc1 int, samePad bool, seed uint64) *Model {
	g := newWeightGen(seed)
	b := circuit.NewBuilder(name)
	x := b.Input(1, 28, 28)

	pad := 0
	if samePad {
		pad = 2
	}
	x = b.Conv2D(x, g.conv(c1, 1, 5, 5), g.bias(c1), 1, pad, "conv1")
	x = b.Activation(x, actA, actB, "act1")
	x = b.AvgPool2D(x, 2, 2, "pool1")
	x = b.Conv2D(x, g.conv(c2, c1, 5, 5), g.bias(c2), 1, pad, "conv2")
	x = b.Activation(x, actA, actB, "act2")
	x = b.AvgPool2D(x, 2, 2, "pool2")
	x = b.Flatten(x, "flatten")
	flat := x.OutShape[0]
	x = b.Dense(x, g.dense(fc1, flat), g.bias(fc1), "fc1")
	x = b.Activation(x, actA, actB, "act3")
	x = b.Dense(x, g.dense(10, fc1), g.bias(10), "fc2")
	x = b.Activation(x, actA, actB, "act4")
	return &Model{
		Name:        name,
		Circuit:     b.Build(x),
		InputShape:  []int{1, 28, 28},
		Description: "LeNet-5-like CNN for MNIST (2 conv, 2 FC, 4 act)",
	}
}

// LeNet5Small is the smallest MNIST network of Table 3.
func LeNet5Small() *Model { return lenet("LeNet-5-small", 4, 8, 32, false, 101) }

// LeNet5Medium is the mid-sized MNIST network of Table 3.
func LeNet5Medium() *Model { return lenet("LeNet-5-medium", 16, 32, 128, false, 102) }

// LeNet5Large matches the TensorFlow tutorial configuration cited by the
// paper (32 and 64 feature maps, 512 hidden units, same padding).
func LeNet5Large() *Model { return lenet("LeNet-5-large", 32, 64, 512, true, 103) }

// Industrial is a stand-in for the paper's proprietary medical-imaging
// network: 5 convolutional and 2 fully connected layers with 6 activations,
// binary output. The exact architecture is not public; this instantiation
// honours the published layer counts.
func Industrial() *Model {
	g := newWeightGen(104)
	b := circuit.NewBuilder("Industrial")
	x := b.Input(1, 32, 32)
	x = b.Conv2D(x, g.conv(16, 1, 3, 3), g.bias(16), 1, 1, "conv1")
	x = b.Activation(x, actA, actB, "act1")
	x = b.Conv2D(x, g.conv(16, 16, 3, 3), g.bias(16), 2, 1, "conv2") // -> 16x16
	x = b.Activation(x, actA, actB, "act2")
	x = b.Conv2D(x, g.conv(32, 16, 3, 3), g.bias(32), 1, 1, "conv3")
	x = b.Activation(x, actA, actB, "act3")
	x = b.Conv2D(x, g.conv(32, 32, 3, 3), g.bias(32), 2, 1, "conv4") // -> 8x8
	x = b.Activation(x, actA, actB, "act4")
	x = b.Conv2D(x, g.conv(64, 32, 3, 3), g.bias(64), 1, 1, "conv5")
	x = b.Activation(x, actA, actB, "act5")
	x = b.Flatten(x, "flatten")
	x = b.Dense(x, g.dense(64, 64*8*8), g.bias(64), "fc1")
	x = b.Activation(x, actA, actB, "act6")
	x = b.Dense(x, g.dense(2, 64), g.bias(2), "fc2")
	return &Model{
		Name:        "Industrial",
		Circuit:     b.Build(x),
		InputShape:  []int{1, 32, 32},
		Description: "stand-in for the proprietary binary classifier (5 conv, 2 FC, 6 act)",
	}
}

// fire appends a SqueezeNet Fire module: a 1x1 squeeze convolution followed
// by parallel 1x1 and 3x3 expand convolutions whose outputs concatenate.
func fire(b *circuit.Builder, g *weightGen, x *circuit.Node, squeeze, expand int, name string) *circuit.Node {
	cin := x.OutShape[0]
	s := b.Conv2D(x, g.conv(squeeze, cin, 1, 1), g.bias(squeeze), 1, 0, name+"/squeeze1x1")
	s = b.Activation(s, actA, actB, name+"/act_squeeze")
	e1 := b.Conv2D(s, g.conv(expand, squeeze, 1, 1), g.bias(expand), 1, 0, name+"/expand1x1")
	e3 := b.Conv2D(s, g.conv(expand, squeeze, 3, 3), g.bias(expand), 1, 1, name+"/expand3x3")
	cat := b.Concat(name+"/concat", e1, e3)
	return b.Activation(cat, actA, actB, name+"/act_expand")
}

// SqueezeNetCIFAR follows the SqueezeNet architecture adapted to CIFAR-10
// with four Fire modules — the deepest network of the paper's evaluation.
func SqueezeNetCIFAR() *Model {
	g := newWeightGen(105)
	b := circuit.NewBuilder("SqueezeNet-CIFAR")
	x := b.Input(3, 32, 32)
	x = b.Conv2D(x, g.conv(64, 3, 3, 3), g.bias(64), 1, 1, "conv1")
	x = b.Activation(x, actA, actB, "act1")
	x = b.AvgPool2D(x, 2, 2, "pool1") // -> 16x16
	x = fire(b, g, x, 16, 32, "fire2")
	x = fire(b, g, x, 16, 32, "fire3")
	x = b.AvgPool2D(x, 2, 2, "pool2") // -> 8x8
	x = fire(b, g, x, 32, 64, "fire4")
	x = fire(b, g, x, 32, 64, "fire5")
	x = b.Conv2D(x, g.conv(10, 128, 1, 1), g.bias(10), 1, 0, "conv10")
	x = b.GlobalAvgPool2D(x, "gap")
	return &Model{
		Name:        "SqueezeNet-CIFAR",
		Circuit:     b.Build(x),
		InputShape:  []int{3, 32, 32},
		Description: "SqueezeNet for CIFAR-10 with 4 Fire modules (10 conv)",
	}
}

// All returns the five evaluation networks in Table 3 order.
func All() []*Model {
	return []*Model{
		LeNet5Small(), LeNet5Medium(), LeNet5Large(), Industrial(), SqueezeNetCIFAR(),
	}
}

// ByName looks a model up by its Table 3 name (case-sensitive).
func ByName(name string) (*Model, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	if name == "LeNet-tiny" {
		return LeNetTiny(), nil
	}
	if name == "NN-20" {
		return NN20(), nil
	}
	return nil, fmt.Errorf("nn: unknown model %q", name)
}

// DeepMLP builds an NN-20-style deep multilayer perceptron: `layers`
// Dense(16x16)+activation blocks over a flattened 4x4 input, closed by a
// 10-way output layer. Its multiplicative depth (~2 levels per block) far
// exceeds any secure modulus chain, making it the bootstrap subsystem's
// workload: it only compiles with Options.Bootstrap and only runs under the
// Refresher. Row-normalized weights (gain 1.25, times the activation's 0.75
// linear term ≈ 0.94/layer) keep activations O(1) at any depth so messages
// respect the bootstrap's K residual bound.
func DeepMLP(layers int) *Model {
	const width = 16
	g := newWeightGen(120)
	b := circuit.NewBuilder(fmt.Sprintf("NN-%d", layers))
	x := b.Input(1, 4, 4)
	x = b.Flatten(x, "flatten")
	for i := 1; i <= layers; i++ {
		x = b.Dense(x, g.denseRowNorm(width, width, 1.25), g.bias(width), fmt.Sprintf("fc%d", i))
		x = b.Activation(x, actA, actB, fmt.Sprintf("act%d", i))
	}
	x = b.Dense(x, g.denseRowNorm(10, width, 1.25), g.bias(10), "out")
	return &Model{
		Name:        fmt.Sprintf("NN-%d", layers),
		Circuit:     b.Build(x),
		InputShape:  []int{1, 4, 4},
		Description: fmt.Sprintf("deep MLP (%d Dense+act blocks) exercising bootstrap placement", layers),
	}
}

// NN20 is the 20-block deep MLP of the bootstrap evaluation (not part of
// the paper's Table 3; reachable via ByName("NN-20")).
func NN20() *Model { return DeepMLP(20) }

// LeNetTiny is a reduced network for demonstrations on real lattice
// cryptography at small ring degrees (not part of the paper's evaluation).
func LeNetTiny() *Model {
	g := newWeightGen(106)
	b := circuit.NewBuilder("LeNet-tiny")
	x := b.Input(1, 8, 8)
	x = b.Conv2D(x, g.conv(2, 1, 3, 3), g.bias(2), 1, 1, "conv1")
	x = b.Activation(x, actA, actB, "act1")
	x = b.AvgPool2D(x, 2, 2, "pool1")
	x = b.Conv2D(x, g.conv(4, 2, 3, 3), nil, 1, 0, "conv2")
	x = b.Activation(x, actA, actB, "act2")
	x = b.Flatten(x, "flatten")
	x = b.Dense(x, g.dense(10, 16), g.bias(10), "fc")
	return &Model{
		Name:        "LeNet-tiny",
		Circuit:     b.Build(x),
		InputShape:  []int{1, 8, 8},
		Description: "reduced demo network for real-crypto runs",
	}
}

// SyntheticImage produces a deterministic image in [0, 1) with the given
// shape, standing in for MNIST/CIFAR samples.
func SyntheticImage(shape []int, seed uint64) *tensor.Tensor {
	prng := ring.NewTestPRNG(seed)
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = float64(prng.Uint64()>>11) / (1 << 53)
	}
	return t
}
