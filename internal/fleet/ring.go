// Package fleet implements the horizontal serving tier of the CHET stack: a
// router that places client sessions across a fleet of chet-serve workers.
// Sessions are sticky — a session's evaluation keys live on the worker that
// admitted them — so placement uses a consistent-hash ring: membership churn
// (a worker dying, a drained worker readmitted) moves only ~K/N of K live
// sessions instead of reshuffling everything, and each moved session costs
// one key handoff rather than a client-visible failure. The router speaks
// the ordinary wire protocol to both sides: clients connect to it exactly as
// they would to a single worker, and workers see it as one more client that
// also sends control frames (health probes, registry syncs, session
// handoffs).
package fleet

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"sort"
	"sync"
)

// DefaultReplicas is the virtual-node count per member when the caller does
// not choose one. More vnodes smooth the load split between members at the
// cost of a longer sorted point list; 64 keeps the worst-case skew across a
// handful of workers within a few percent.
const DefaultReplicas = 64

// Ring is a consistent-hash ring with virtual nodes. It is safe for
// concurrent use: lookups take a read lock, membership changes a write lock.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	members  map[string]struct{}
	points   []ringPoint // sorted by hash
	version  uint64
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing creates an empty ring with the given vnode count per member
// (<= 0 selects DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, members: map[string]struct{}{}}
}

// Add inserts a member and its vnodes. Returns false if already present.
func (r *Ring) Add(member string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return false
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{vnodeHash(member, i), member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.version++
	return true
}

// Remove deletes a member and its vnodes. Returns false if absent.
func (r *Ring) Remove(member string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return false
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.version++
	return true
}

// Owner maps a key to the member owning it: the first vnode clockwise of the
// key's scrambled hash. Returns false when the ring is empty. Placement is a
// pure function of (membership, key): two lookups under the same membership
// always agree, which is what lets every relay recompute ownership lazily
// instead of broadcasting placement changes.
func (r *Ring) Owner(key uint64) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := splitmix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member, true
}

// Members returns the live members, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the live member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Version counts membership changes; a relay can compare versions to detect
// a rebalance between two lookups.
func (r *Ring) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// vnodeHash positions one virtual node: FNV-1a over the member name plus the
// replica index, finalized through the splitmix64 mixer. Member names are
// near-identical host:port strings, and raw FNV clusters them into a few
// arcs of the ring (measured 4%/64%/25%/6% splits across four workers); the
// finalizer's avalanche restores a near-uniform spread.
func vnodeHash(member string, replica int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, member)
	var idx [5]byte
	idx[0] = '#'
	binary.LittleEndian.PutUint32(idx[1:], uint32(replica))
	h.Write(idx[:])
	return splitmix64(h.Sum64())
}

// splitmix64 scrambles a key before the ring lookup. Session IDs are small
// sequential integers; without a finalizer they would all land in one arc of
// the ring and pile onto one member.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
