package fleet_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chet/internal/circuit"
	"chet/internal/core"
	"chet/internal/fleet"
	"chet/internal/ring"
	"chet/internal/serve"
	"chet/internal/telemetry"
	"chet/internal/tensor"
	"chet/internal/wire"
)

func randTensor(shape []int, bound float64, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * bound
	}
	return t
}

var (
	compileOnce sync.Once
	compiled    *core.Compiled
	compileErr  error

	batchCompileOnce sync.Once
	batchCompiled    *core.Compiled
	batchCompileErr  error
)

// testCompiled compiles the same tiny CNN the serve package tests use:
// compilation and keygen dominate wall-clock, so it is shared per package.
func testCompiled(t *testing.T) *core.Compiled {
	t.Helper()
	compileOnce.Do(func() {
		b := circuit.NewBuilder("fleet-test-cnn")
		x := b.Input(1, 5, 5)
		x = b.Conv2D(x, randTensor([]int{2, 1, 3, 3}, 0.4, 1), randTensor([]int{2}, 0.2, 2), 1, 0, "conv1")
		x = b.Activation(x, 0.1, 0.9, "act1")
		x = b.Flatten(x, "flat")
		x = b.Dense(x, randTensor([]int{3, 18}, 0.4, 3), randTensor([]int{3}, 0.2, 4), "fc")
		compiled, compileErr = core.Compile(b.Build(x), core.Options{
			Scheme:       core.SchemeRNS,
			SecurityBits: -1,
			MinLogN:      5,
			MaxLogN:      9,
		})
	})
	if compileErr != nil {
		t.Fatalf("compiling test circuit: %v", compileErr)
	}
	return compiled
}

func testBatchCompiled(t *testing.T) *core.Compiled {
	t.Helper()
	batchCompileOnce.Do(func() {
		b := circuit.NewBuilder("fleet-test-cnn-batched")
		x := b.Input(1, 5, 5)
		x = b.Conv2D(x, randTensor([]int{2, 1, 3, 3}, 0.4, 1), randTensor([]int{2}, 0.2, 2), 1, 0, "conv1")
		x = b.Activation(x, 0.1, 0.9, "act1")
		x = b.Flatten(x, "flat")
		x = b.Dense(x, randTensor([]int{3, 18}, 0.4, 3), randTensor([]int{3}, 0.2, 4), "fc")
		batchCompiled, batchCompileErr = core.Compile(b.Build(x), core.Options{
			Scheme:       core.SchemeRNS,
			SecurityBits: -1,
			MinLogN:      5,
			MaxLogN:      11,
			Batch:        4,
		})
	})
	if batchCompileErr != nil {
		t.Fatalf("compiling batched test circuit: %v", batchCompileErr)
	}
	return batchCompiled
}

// startWorker runs a serve.Server on loopback and tears it down with the
// test (Shutdown is idempotent, so tests that kill a worker early are fine).
func startWorker(t *testing.T, cfg serve.Config) (*serve.Server, string) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ln.Addr().String()
}

// startFleet runs n workers plus a router in front of them. Cleanups are
// LIFO, so the router drains before its workers do.
func startFleet(t *testing.T, n int, wcfg serve.Config, rcfg fleet.Config) (*fleet.Router, string, map[string]*serve.Server) {
	t.Helper()
	workers := map[string]*serve.Server{}
	for i := 0; i < n; i++ {
		s, addr := startWorker(t, wcfg)
		workers[addr] = s
		rcfg.Workers = append(rcfg.Workers, addr)
	}
	if rcfg.ProbeInterval == 0 {
		rcfg.ProbeInterval = 20 * time.Millisecond
	}
	r, err := fleet.New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		r.Shutdown(ctx)
	})
	return r, ln.Addr().String(), workers
}

func dialVia(t *testing.T, addr string, comp *core.Compiled, seed uint64) *serve.Client {
	t.Helper()
	c, err := serve.Dial(addr, serve.ClientConfig{Compiled: comp, PRNG: ring.NewTestPRNG(seed)})
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func sameBits(t *testing.T, got, want *tensor.Tensor, ctx string) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: got %d outputs, want %d", ctx, len(got.Data), len(want.Data))
	}
	for k := range got.Data {
		if math.Float64bits(got.Data[k]) != math.Float64bits(want.Data[k]) {
			t.Fatalf("%s output %d: %v != %v (not bit-identical)", ctx, k, got.Data[k], want.Data[k])
		}
	}
}

// TestRouterE2EBitIdentical is the fleet acceptance test: clients that
// connect to the router get bit-identical answers to clients that connect to
// a worker directly. Each routed client has a seed twin dialing worker 0
// straight — same PRNG, same keys, same ciphertexts — so the homomorphic
// results must match to the last bit regardless of which worker the ring
// picked.
func TestRouterE2EBitIdentical(t *testing.T) {
	comp := testCompiled(t)
	r, addr, _ := startFleet(t, 3, serve.Config{Compiled: comp, Workers: 2, Parallel: 2}, fleet.Config{})

	const sessions = 4
	for i := 0; i < sessions; i++ {
		seed := uint64(700 + i)
		direct := dialVia(t, r.Metrics().Workers[0].Addr, comp, seed)
		routed := dialVia(t, addr, comp, seed)
		img := randTensor([]int{1, 5, 5}, 1, int64(70+i))

		encD, encR := direct.Encrypt(img), routed.Encrypt(img)
		outD, err := direct.Infer(encD)
		if err != nil {
			t.Fatalf("session %d direct: %v", i, err)
		}
		outR, err := routed.Infer(encR)
		if err != nil {
			t.Fatalf("session %d routed: %v", i, err)
		}
		sameBits(t, routed.Decrypt(outR), direct.Decrypt(outD), "routed vs direct")
	}

	m := r.Metrics()
	if m.SessionsOpened != sessions || m.Relays != sessions {
		t.Fatalf("router opened %d sessions, relayed %d; want %d/%d", m.SessionsOpened, m.Relays, sessions, sessions)
	}
	if m.Handoffs < sessions {
		t.Fatalf("handoffs = %d, want >= %d (one placement per session)", m.Handoffs, sessions)
	}
	if m.Failovers != 0 || m.ClientErrors != 0 {
		t.Fatalf("healthy fleet recorded failovers=%d clientErrors=%d", m.Failovers, m.ClientErrors)
	}
	if m.LiveWorkers != 3 {
		t.Fatalf("live workers = %d, want 3", m.LiveWorkers)
	}
	var relayed uint64
	for _, w := range m.Workers {
		relayed += w.Relayed
	}
	if relayed != sessions {
		t.Fatalf("per-worker relayed sums to %d, want %d", relayed, sessions)
	}
}

// TestRouterFailoverOnWorkerKill kills the worker that owns a live session
// and checks the client never sees it: the router removes the dead worker
// from the ring, replays the session's eval keys to the survivor, and the
// retried request returns the same bits the dead worker would have.
func TestRouterFailoverOnWorkerKill(t *testing.T) {
	comp := testCompiled(t)
	r, addr, workers := startFleet(t, 2,
		serve.Config{Compiled: comp, Workers: 2, Parallel: 2},
		fleet.Config{RelayAttempts: 4})

	cli := dialVia(t, addr, comp, 801)
	img := randTensor([]int{1, 5, 5}, 1, 81)
	enc := cli.Encrypt(img)
	before, err := cli.Infer(enc)
	if err != nil {
		t.Fatalf("pre-kill infer: %v", err)
	}

	var owner string
	for _, w := range r.Metrics().Workers {
		if w.Handoffs > 0 {
			owner = w.Addr
		}
	}
	if owner == "" {
		t.Fatal("no worker recorded the session handoff")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := workers[owner].Shutdown(ctx); err != nil {
		t.Fatalf("killing owner %s: %v", owner, err)
	}

	// Same ciphertext, new worker, replayed keys: the answer must not change.
	after, err := cli.Infer(enc)
	if err != nil {
		t.Fatalf("post-kill infer surfaced to the client: %v", err)
	}
	sameBits(t, cli.Decrypt(after), cli.Decrypt(before), "post-failover")

	m := r.Metrics()
	if m.Failovers == 0 {
		t.Fatalf("no failover recorded: %+v", m)
	}
	if m.Rebalances == 0 || m.LiveWorkers != 1 {
		t.Fatalf("ring did not rebalance: rebalances=%d live=%d", m.Rebalances, m.LiveWorkers)
	}
	if m.Handoffs < 2 {
		t.Fatalf("handoffs = %d, want >= 2 (placement + failover replay)", m.Handoffs)
	}
}

// TestRouterReplaysEvictedSessions pins the unknown-session recovery path:
// a worker whose LRU evicted a handed-off session answers unknown-session,
// and the router must replay the keys instead of passing the error through.
func TestRouterReplaysEvictedSessions(t *testing.T) {
	comp := testCompiled(t)
	r, addr, _ := startFleet(t, 1,
		serve.Config{Compiled: comp, MaxSessions: 1},
		fleet.Config{})

	a := dialVia(t, addr, comp, 811)
	b := dialVia(t, addr, comp, 812) // b's placement evicts a on the worker
	img := randTensor([]int{1, 5, 5}, 1, 82)

	if _, err := a.Infer(a.Encrypt(img)); err != nil {
		t.Fatalf("a (evicted worker-side) did not recover: %v", err)
	}
	if _, err := b.Infer(b.Encrypt(img)); err != nil {
		t.Fatalf("b (evicted by a's replay) did not recover: %v", err)
	}
	m := r.Metrics()
	if m.UnknownSessions == 0 {
		t.Fatalf("no unknown-session recovery recorded: %+v", m)
	}
	if m.ClientErrors != 0 {
		t.Fatalf("evictions leaked %d errors to clients", m.ClientErrors)
	}
}

// TestRouterFingerprintGateAndBatch covers the replicated registry and the
// batched relay path: once the probe loop has learned the fleet's model, a
// client compiled against anything else is refused at the router with a
// typed fingerprint error, while a matching client can run batched
// inference straight through.
func TestRouterFingerprintGateAndBatch(t *testing.T) {
	comp := testBatchCompiled(t)
	r, addr, _ := startFleet(t, 2,
		serve.Config{Compiled: comp, MaxBatch: 2, BatchWait: 20 * time.Millisecond},
		fleet.Config{ProbeInterval: 10 * time.Millisecond})

	deadline := time.Now().Add(10 * time.Second)
	for r.Metrics().RegistryModels == 0 {
		if time.Now().After(deadline) {
			t.Fatal("router never learned the fleet's model from probes")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := serve.Dial(addr, serve.ClientConfig{Compiled: testCompiled(t), PRNG: ring.NewTestPRNG(821)}); err == nil {
		t.Fatal("mismatched compilation was admitted")
	} else {
		var ef *wire.ErrorFrame
		if !errors.As(err, &ef) || ef.Code != wire.CodeFingerprintMismatch {
			t.Fatalf("mismatched compilation: got %v, want CodeFingerprintMismatch", err)
		}
	}

	cli := dialVia(t, addr, comp, 822)
	imgs := []*tensor.Tensor{
		randTensor([]int{1, 5, 5}, 1, 83),
		randTensor([]int{1, 5, 5}, 1, 84),
	}
	got, err := cli.RunBatch(imgs)
	if err != nil {
		t.Fatalf("batched inference through the router: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("RunBatch returned %d tensors, want 2", len(got))
	}
	for i, g := range got {
		for k, v := range g.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("batch lane %d output %d is %v", i, k, v)
			}
		}
	}
}

// TestRouterShutdownDrains checks Shutdown is clean and idempotent and that
// a drained router refuses new connections.
func TestRouterShutdownDrains(t *testing.T) {
	comp := testCompiled(t)
	r, addr, _ := startFleet(t, 1, serve.Config{Compiled: comp}, fleet.Config{})

	cli := dialVia(t, addr, comp, 831)
	if _, err := cli.Infer(cli.Encrypt(randTensor([]int{1, 5, 5}, 1, 85))); err != nil {
		t.Fatalf("pre-shutdown infer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := r.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if _, err := serve.Dial(addr, serve.ClientConfig{Compiled: comp, PRNG: ring.NewTestPRNG(832)}); err == nil {
		t.Fatal("drained router admitted a new connection")
	}
}

// TestRouterMetricsEndpoint scrapes the router's Prometheus surface and
// checks the fleet series render, including the per-worker breakdown.
func TestRouterMetricsEndpoint(t *testing.T) {
	comp := testCompiled(t)
	r, addr, _ := startFleet(t, 2, serve.Config{Compiled: comp}, fleet.Config{})

	cli := dialVia(t, addr, comp, 841)
	if _, err := cli.Infer(cli.Encrypt(randTensor([]int{1, 5, 5}, 1, 86))); err != nil {
		t.Fatalf("infer: %v", err)
	}

	srv := httptest.NewServer(r.ObservabilityMux())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])

	for _, series := range []string{
		"chet_router_sessions_opened_total 1",
		"chet_router_relays_total 1",
		"chet_router_live_workers 2",
		"chet_router_worker_up{worker=",
		"chet_router_worker_inflight{worker=",
		"chet_router_worker_relayed_total{worker=",
		"chet_router_ring_rebalances_total",
		"chet_router_handoffs_total 1",
		"chet_router_trace_spans",
		"chet_router_trace_spans_dropped_total",
		"chet_router_worker_bootstraps_total{worker=",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing %q\n%s", series, body)
		}
	}
}

// TestRouterTraceStitching is the distributed-tracing acceptance test: one
// request through the router must stitch into a single trace — the router's
// relay span parents the worker's request scope, CollectTrace merges both
// processes' rings, and the /trace endpoint serves the merged Chrome JSON
// with distinct pids.
func TestRouterTraceStitching(t *testing.T) {
	comp := testCompiled(t)
	r, addr, _ := startFleet(t, 2, serve.Config{Compiled: comp, Trace: true}, fleet.Config{})

	cli := dialVia(t, addr, comp, 851)
	if _, err := cli.Infer(cli.Encrypt(randTensor([]int{1, 5, 5}, 1, 87))); err != nil {
		t.Fatalf("infer: %v", err)
	}
	traceID := cli.TraceBase() + 1 // request n carries trace ID TraceBase()+n

	procs := r.CollectTrace(traceID)
	if len(procs) < 2 {
		t.Fatalf("CollectTrace returned %d processes, want router + at least one worker", len(procs))
	}
	if procs[0].Name != "chet-router" {
		t.Fatalf("first process is %q, want chet-router", procs[0].Name)
	}
	pids := map[int]string{}
	for _, p := range procs {
		if prev, dup := pids[p.PID]; dup {
			t.Fatalf("pid %d assigned to both %q and %q", p.PID, prev, p.Name)
		}
		pids[p.PID] = p.Name
	}

	var relay telemetry.Span
	for _, s := range procs[0].Spans {
		if s.TraceID != traceID {
			t.Fatalf("CollectTrace(%#x) leaked router span %q from trace %#x", traceID, s.Op, s.TraceID)
		}
		if strings.HasPrefix(s.Op, "relay:") {
			relay = s
		}
	}
	if relay.SpanID == 0 {
		t.Fatalf("router recorded no relay span for trace %#x: %+v", traceID, procs[0].Spans)
	}

	var request, queueWait telemetry.Span
	for _, p := range procs[1:] {
		for _, s := range p.Spans {
			if s.TraceID != traceID {
				t.Fatalf("worker %q span %q from trace %#x leaked into trace %#x", p.Name, s.Op, s.TraceID, traceID)
			}
			switch {
			case strings.HasPrefix(s.Op, "infer ") && s.Kind == telemetry.KindScope:
				request = s
			case s.Op == "queue-wait":
				queueWait = s
			}
		}
	}
	if request.SpanID == 0 {
		t.Fatalf("no worker recorded a request scope for trace %#x", traceID)
	}
	if request.Parent != relay.SpanID {
		t.Fatalf("worker request scope parent = %#x, want router relay span %#x", request.Parent, relay.SpanID)
	}
	if queueWait.Parent != relay.SpanID {
		t.Fatalf("queue-wait parent = %#x, want router relay span %#x", queueWait.Parent, relay.SpanID)
	}

	// The /trace endpoint must serve the same stitch as Chrome JSON.
	srv := httptest.NewServer(r.ObservabilityMux())
	defer srv.Close()
	resp, err := srv.Client().Get(fmt.Sprintf("%s/trace?id=%016x", srv.URL, traceID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/trace did not return valid JSON: %v", err)
	}
	eventPids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		eventPids[e.Pid] = true
		if got := e.Args["trace_id"]; got != fmt.Sprintf("%016x", traceID) {
			t.Fatalf("/trace event carries trace_id %v, want %016x", got, traceID)
		}
	}
	if len(eventPids) < 2 {
		t.Fatalf("/trace events span %d pids, want router and worker tracks", len(eventPids))
	}

	badResp, err := srv.Client().Get(srv.URL + "/trace?id=zzz")
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != 400 {
		t.Errorf("/trace?id=zzz returned %d, want 400", badResp.StatusCode)
	}
}
