package fleet

import (
	"bytes"
	"sync"

	"chet/internal/wire"
)

// Registry is the router's merged view of the compiled models the fleet
// serves, keyed by compilation fingerprint. It is replicated: the router
// pushes its snapshot to every worker on each probe cycle and merges each
// worker's ack back in, so any single surviving process — router or worker —
// can rebuild the full view. Fingerprints are content hashes of the
// compilation, so entries never conflict and last-writer-wins is safe.
type Registry struct {
	mu      sync.Mutex
	entries map[[32]byte]wire.RegistryEntry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[[32]byte]wire.RegistryEntry{}}
}

// Merge folds entries in, returning how many were previously unknown.
func (r *Registry) Merge(entries []wire.RegistryEntry) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	added := 0
	for _, e := range entries {
		if _, ok := r.entries[e.Fingerprint]; !ok {
			added++
		}
		r.entries[e.Fingerprint] = e
	}
	return added
}

// Has reports whether a fingerprint is a known compiled model.
func (r *Registry) Has(fp [32]byte) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[fp]
	return ok
}

// Size returns the number of known models.
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Snapshot returns the entries sorted by fingerprint, so two replicas with
// the same contents serialize identically.
func (r *Registry) Snapshot() []wire.RegistryEntry {
	r.mu.Lock()
	out := make([]wire.RegistryEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort := func(a, b wire.RegistryEntry) bool { return bytes.Compare(a.Fingerprint[:], b.Fingerprint[:]) < 0 }
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && sort(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
