package fleet

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"chet/internal/telemetry"
	"chet/internal/wire"
)

// Config parameterizes a Router. The zero value of every optional field
// selects the documented default.
type Config struct {
	// Workers are the chet-serve worker addresses this router balances
	// across. Required, at least one. The set is fixed for the router's
	// lifetime; health probes move members in and out of the live ring.
	Workers []string
	// Replicas is the consistent-hash vnode count per worker.
	// Default DefaultReplicas.
	Replicas int
	// MaxSessions caps the router's session table (stored session-open
	// payloads are the dominant memory cost — they hold the eval keys).
	// Beyond it the least recently used session is evicted and its client
	// re-opens, exactly like the worker-side registry. Default 256.
	MaxSessions int
	// MaxFrame bounds accepted frame payloads on both sides.
	// Default wire.DefaultMaxFrame.
	MaxFrame int
	// DialTimeout bounds upstream dials from relay handlers. Default 5s.
	DialTimeout time.Duration
	// ProbeInterval is the health-probe cadence per worker. Default 250ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe exchange (dial, probe, ack, registry
	// sync). Default 2s.
	ProbeTimeout time.Duration
	// ProbeFailures is how many consecutive probe failures remove a worker
	// from the ring. A worker that answers a probe with Draining, or fails
	// a relay outright, is removed immediately — the threshold only guards
	// against one flaky probe evicting a healthy worker. Default 3.
	ProbeFailures int
	// RelayAttempts bounds how many workers one request may be tried
	// against before the client sees an error. Default 3.
	RelayAttempts int
	// Logf, when set, receives one line per notable router event.
	Logf func(format string, args ...any)
	// Logger, when set, receives structured per-request events (relay
	// outcomes, failovers, handoffs) with trace_id attributes, so log lines
	// join the distributed trace the span ring records. Default discards.
	Logger *slog.Logger
	// SpanCap bounds the router's span ring. Default 1<<16.
	SpanCap int
}

func (c *Config) fillDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 256
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ProbeFailures == 0 {
		c.ProbeFailures = 3
	}
	if c.RelayAttempts == 0 {
		c.RelayAttempts = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// workerState is the router's view of one configured worker.
type workerState struct {
	addr     string
	up       atomic.Bool
	draining atomic.Bool
	inflight atomic.Int64  // requests currently relayed to this worker
	relayed  atomic.Uint64 // responses delivered from this worker
	handoffs atomic.Uint64 // sessions handed to this worker

	// Budget telemetry scraped from health acks: the worker's cumulative
	// bootstrap-refresh tally and its remaining-levels low-water mark
	// (headroomKnown false until the worker reports one).
	bootstraps    atomic.Uint64
	minHeadroom   atomic.Int64
	headroomKnown atomic.Bool

	// Probe-loop-private state (single goroutine, no locking).
	failures  int
	nonce     uint64
	probeConn net.Conn
}

// routerSession is one client session as the router tracks it: the stored
// session-open payload (fingerprint + eval keys, replayed on every owner
// change) and the current placement.
type routerSession struct {
	id   uint64
	open []byte

	// mu serializes placement: concurrent streams of one session agree on
	// one handoff instead of racing duplicates.
	mu       sync.Mutex
	owner    string // worker currently holding the keys; "" before placement
	workerID uint64 // session ID on owner; 0 forces a (re)handoff
}

// invalidate clears a placement the fleet proved stale (worker evicted the
// session or went down), but only if it has not already been replaced.
func (s *routerSession) invalidate(workerID uint64) {
	s.mu.Lock()
	if s.workerID == workerID {
		s.workerID = 0
	}
	s.mu.Unlock()
}

// sessionTable is the router's LRU session store (same shape as the worker's
// registry: the stored payloads are a key cache, eviction forces a re-open).
type sessionTable struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *routerSession
	byID    map[uint64]*list.Element
	nextID  uint64
	opened  uint64
	evicted uint64
}

func newSessionTable(cap int) *sessionTable {
	return &sessionTable{cap: cap, ll: list.New(), byID: map[uint64]*list.Element{}}
}

func (t *sessionTable) add(open []byte) *routerSession {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.opened++
	s := &routerSession{id: t.nextID, open: open}
	t.byID[s.id] = t.ll.PushFront(s)
	for t.ll.Len() > t.cap {
		last := t.ll.Back()
		victim := last.Value.(*routerSession)
		t.ll.Remove(last)
		delete(t.byID, victim.id)
		t.evicted++
	}
	return s
}

func (t *sessionTable) get(id uint64) (*routerSession, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.byID[id]
	if !ok {
		return nil, false
	}
	t.ll.MoveToFront(el)
	return el.Value.(*routerSession), true
}

func (t *sessionTable) remove(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.byID[id]; ok {
		t.ll.Remove(el)
		delete(t.byID, id)
	}
}

func (t *sessionTable) stats() (opened, evicted uint64, active int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.opened, t.evicted, t.ll.Len()
}

// Router is the fleet's front door: it accepts ordinary wire-protocol client
// connections, places each session on a worker via the consistent-hash ring,
// relays inference requests to the session's owner, and heals around worker
// failure by replaying the session's eval keys to a surviving worker.
// Create with New, run with Serve, stop with Shutdown.
type Router struct {
	cfg        Config
	ring       *Ring
	registry   *Registry
	workers    map[string]*workerState
	workerList []*workerState // stable iteration order (config order)
	sessions   *sessionTable
	// spans retains the router's side of every traced request: admission,
	// handoff, failover, and relay spans, stitched to client and worker
	// spans by trace ID (see CollectTrace).
	spans *telemetry.SpanRing

	draining  atomic.Bool
	relayWG   sync.WaitGroup // client requests being relayed
	connWG    sync.WaitGroup // connection handlers
	probeWG   sync.WaitGroup
	probeQuit chan struct{}

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	started  bool
	shutdown bool

	relays, failovers, handoffs  atomic.Uint64
	rebalances, probeFails       atomic.Uint64
	clientErrors, rejShutdown    atomic.Uint64
	registryAdds, unknownSession atomic.Uint64
}

// New validates the configuration and builds a router. All configured
// workers start on the ring optimistically; the probe loop (started by
// Serve) removes any that turn out to be dead within ProbeFailures probes.
func New(cfg Config) (*Router, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: Config.Workers is required")
	}
	cfg.fillDefaults()
	r := &Router{
		cfg:       cfg,
		ring:      NewRing(cfg.Replicas),
		registry:  NewRegistry(),
		workers:   map[string]*workerState{},
		sessions:  newSessionTable(cfg.MaxSessions),
		spans:     telemetry.NewSpanRing(cfg.SpanCap),
		probeQuit: make(chan struct{}),
		conns:     map[net.Conn]struct{}{},
	}
	for _, addr := range cfg.Workers {
		if _, dup := r.workers[addr]; dup {
			return nil, fmt.Errorf("fleet: worker %s configured twice", addr)
		}
		w := &workerState{addr: addr}
		w.up.Store(true)
		r.workers[addr] = w
		r.workerList = append(r.workerList, w)
		r.ring.Add(addr)
	}
	return r, nil
}

// Serve accepts client connections on ln until Shutdown (or a listener
// error). It always returns a non-nil error; after a clean Shutdown the
// error wraps net.ErrClosed and can be ignored.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.shutdown {
		r.mu.Unlock()
		return errors.New("fleet: router already shut down")
	}
	r.ln = ln
	if !r.started {
		r.started = true
		r.probeWG.Add(1)
		go r.probeLoop()
	}
	r.mu.Unlock()
	r.cfg.Logf("fleet: router listening on %v (%d workers, %d vnodes each)",
		ln.Addr(), len(r.workerList), r.cfg.Replicas)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("fleet: accept: %w", err)
		}
		r.mu.Lock()
		if r.shutdown || r.draining.Load() {
			r.mu.Unlock()
			conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.connWG.Add(1)
		go r.handleConn(conn)
	}
}

// Shutdown drains the router: new connections and requests are rejected,
// requests already being relayed run to completion and their responses are
// delivered, then client connections close and the probe loop stops. If ctx
// expires first, remaining work is abandoned and ctx.Err() returned.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.shutdown {
		r.mu.Unlock()
		return nil
	}
	r.shutdown = true
	ln := r.ln
	r.mu.Unlock()

	r.draining.Store(true)
	if ln != nil {
		ln.Close()
	}
	drained := make(chan struct{})
	go func() {
		r.relayWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	r.mu.Lock()
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	r.connWG.Wait()
	close(r.probeQuit)
	r.probeWG.Wait()
	r.cfg.Logf("fleet: router shutdown complete (%d sessions placed)", r.Metrics().SessionsOpened)
	return err
}

// markDown removes a worker from the live ring (idempotent).
func (r *Router) markDown(addr string, cause error) {
	w := r.workers[addr]
	if w == nil {
		return
	}
	if w.up.CompareAndSwap(true, false) {
		r.ring.Remove(addr)
		r.rebalances.Add(1)
		r.cfg.Logf("fleet: worker %s removed from ring: %v", addr, cause)
	}
}

// markUp readmits a worker to the live ring (idempotent).
func (r *Router) markUp(addr string) {
	w := r.workers[addr]
	if w == nil {
		return
	}
	if w.up.CompareAndSwap(false, true) {
		r.ring.Add(addr)
		r.rebalances.Add(1)
		r.cfg.Logf("fleet: worker %s readmitted to ring", addr)
	}
}

// --- health probing and registry replication ---

func (r *Router) probeLoop() {
	defer func() {
		for _, w := range r.workerList {
			if w.probeConn != nil {
				w.probeConn.Close()
				w.probeConn = nil
			}
		}
		r.probeWG.Done()
	}()
	tick := time.NewTicker(r.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.probeQuit:
			return
		case <-tick.C:
		}
		for _, w := range r.workerList {
			select {
			case <-r.probeQuit:
				return
			default:
			}
			r.probe(w)
		}
	}
}

// probe runs one health exchange against a worker: probe/ack, then a
// registry sync over the same connection. The sync doubles as replication
// (workers receive the merged view) and bootstrap (a freshly started router
// learns the fleet's models from the first worker that acks).
func (r *Router) probe(w *workerState) {
	c := w.probeConn
	if c == nil {
		var err error
		c, err = net.DialTimeout("tcp", w.addr, r.cfg.ProbeTimeout)
		if err != nil {
			r.probeFailed(w, err)
			return
		}
		w.probeConn = c
	}
	c.SetDeadline(time.Now().Add(r.cfg.ProbeTimeout))
	w.nonce++
	fail := func(err error) {
		c.Close()
		w.probeConn = nil
		r.probeFailed(w, err)
	}
	p, err := (&wire.HealthProbe{Nonce: w.nonce}).Encode()
	if err != nil {
		fail(err)
		return
	}
	if err := wire.WriteFrame(c, wire.MsgHealthProbe, p); err != nil {
		fail(err)
		return
	}
	t, resp, err := wire.ReadFrame(c, r.cfg.MaxFrame)
	if err != nil {
		fail(err)
		return
	}
	var ack wire.HealthAck
	if t != wire.MsgHealthAck {
		fail(fmt.Errorf("probe answered with %v frame", t))
		return
	}
	if err := ack.Decode(resp); err != nil {
		fail(err)
		return
	}
	if ack.Nonce != w.nonce {
		fail(fmt.Errorf("probe ack nonce %d, sent %d", ack.Nonce, w.nonce))
		return
	}
	w.failures = 0
	w.draining.Store(ack.Draining)
	w.bootstraps.Store(ack.Bootstraps)
	if ack.HeadroomKnown {
		w.minHeadroom.Store(ack.MinHeadroom)
		w.headroomKnown.Store(true)
	}
	if ack.Draining {
		// Definitive word from the worker itself — no failure threshold.
		r.markDown(w.addr, errors.New("worker reports draining"))
		return
	}

	sync, err := (&wire.RegistrySync{Entries: r.registry.Snapshot()}).Encode()
	if err != nil {
		fail(err)
		return
	}
	if err := wire.WriteFrame(c, wire.MsgRegistrySync, sync); err != nil {
		fail(err)
		return
	}
	t, resp, err = wire.ReadFrame(c, r.cfg.MaxFrame)
	if err != nil {
		fail(err)
		return
	}
	if t != wire.MsgRegistrySyncAck {
		fail(fmt.Errorf("registry sync answered with %v frame", t))
		return
	}
	var sack wire.RegistrySyncAck
	if err := sack.Decode(resp); err != nil {
		fail(err)
		return
	}
	if added := r.registry.Merge(sack.Entries); added > 0 {
		r.registryAdds.Add(uint64(added))
		r.cfg.Logf("fleet: learned %d model(s) from %s (registry now %d)", added, w.addr, r.registry.Size())
	}
	c.SetDeadline(time.Time{})
	r.markUp(w.addr)
}

func (r *Router) probeFailed(w *workerState, err error) {
	r.probeFails.Add(1)
	w.failures++
	if w.failures >= r.cfg.ProbeFailures {
		r.markDown(w.addr, fmt.Errorf("%d consecutive probe failures, last: %w", w.failures, err))
	}
}

// --- client connection handling ---

// Fixed offsets of the mutable header fields shared by InferRequest and
// InferBatchRequest payloads (sess u64, req u64, trace u64, parent u64,
// timeout u32). The router rewrites the session ID (router-scoped to
// worker-scoped), the parent span (its own relay span interposes between
// the client's span and the worker's), and the timeout (remaining budget
// on retry) in place, and never decodes the ciphertexts that follow.
const (
	offSessionID = 0
	offRequestID = 8
	offTraceID   = 16
	offParent    = 24
	offTimeout   = 32
	inferHdrLen  = 36
)

// relayHandler serves one client connection. Upstream connections are
// per-handler, opened lazily: each handler processes client frames strictly
// in order and is the only user of its upstream conns, so request/response
// pairs never interleave. Worker sessions are keyed by ID, not connection,
// so many handlers can quote the same worker session concurrently.
type relayHandler struct {
	r        *Router
	client   net.Conn
	upstream map[string]net.Conn
}

func (r *Router) handleConn(conn net.Conn) {
	h := &relayHandler{r: r, client: conn, upstream: map[string]net.Conn{}}
	defer func() {
		for _, c := range h.upstream {
			c.Close()
		}
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
		conn.Close()
		r.connWG.Done()
	}()

	for {
		t, payload, err := wire.ReadFrame(conn, r.cfg.MaxFrame)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) {
				h.writeErr(wire.CodeBadMessage, 0, "%v", err)
			}
			return
		}
		switch t {
		case wire.MsgSessionOpen:
			if !h.handleOpen(payload) {
				return
			}
		case wire.MsgInferRequest, wire.MsgInferBatchRequest:
			if !h.handleInfer(t, payload) {
				return
			}
		default:
			if !h.writeErr(wire.CodeBadMessage, 0, "unexpected %v frame at the router", t) {
				return
			}
		}
	}
}

// writeErr sends an error frame to the client; false means the connection is
// beyond use.
func (h *relayHandler) writeErr(code wire.ErrorCode, reqID uint64, format string, args ...any) bool {
	h.r.clientErrors.Add(1)
	payload, err := (&wire.ErrorFrame{Code: code, RequestID: reqID, Message: fmt.Sprintf(format, args...)}).Encode()
	if err != nil {
		return false
	}
	return wire.WriteFrame(h.client, wire.MsgError, payload) == nil
}

// conn returns this handler's connection to a worker, dialing if needed.
func (h *relayHandler) conn(addr string) (net.Conn, error) {
	if c, ok := h.upstream[addr]; ok {
		return c, nil
	}
	c, err := net.DialTimeout("tcp", addr, h.r.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	h.upstream[addr] = c
	return c, nil
}

// drop discards this handler's cached connection to a worker.
func (h *relayHandler) drop(addr string) {
	if c, ok := h.upstream[addr]; ok {
		c.Close()
		delete(h.upstream, addr)
	}
}

// handoff ensures sess is placed on owner, replaying its stored session-open
// payload if the owner changed (or never had it). Returns the worker-local
// session ID; a non-nil *wire.ErrorFrame is the worker's typed refusal and a
// non-nil error a transport failure. When a replay actually happens it is
// recorded as a "handoff" span under the caller's trace context (traceID 0
// for placements outside any traced request).
func (h *relayHandler) handoff(sess *routerSession, owner string, traceID, parent uint64) (uint64, *wire.ErrorFrame, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.owner == owner && sess.workerID != 0 {
		return sess.workerID, nil, nil
	}
	start := time.Now()
	defer func() {
		h.r.spans.Record(telemetry.KindScope, "handoff:"+owner, start, time.Now(),
			traceID, telemetry.NewSpanID(), parent)
	}()
	c, err := h.conn(owner)
	if err != nil {
		return 0, nil, err
	}
	payload, err := (&wire.SessionHandoff{RouterSessionID: sess.id, Open: sess.open}).Encode()
	if err != nil {
		return 0, nil, err
	}
	if err := wire.WriteFrame(c, wire.MsgSessionHandoff, payload); err != nil {
		h.drop(owner)
		return 0, nil, err
	}
	t, resp, err := wire.ReadFrame(c, h.r.cfg.MaxFrame)
	if err != nil {
		h.drop(owner)
		return 0, nil, err
	}
	switch t {
	case wire.MsgSessionHandoffAck:
		var ack wire.SessionHandoffAck
		if err := ack.Decode(resp); err != nil {
			h.drop(owner)
			return 0, nil, err
		}
		if ack.RouterSessionID != sess.id {
			h.drop(owner)
			return 0, nil, fmt.Errorf("handoff ack for session %d, sent %d", ack.RouterSessionID, sess.id)
		}
		sess.owner, sess.workerID = owner, ack.WorkerSessionID
		h.r.handoffs.Add(1)
		if w := h.r.workers[owner]; w != nil {
			w.handoffs.Add(1)
		}
		return ack.WorkerSessionID, nil, nil
	case wire.MsgError:
		var ef wire.ErrorFrame
		if err := ef.Decode(resp); err != nil {
			h.drop(owner)
			return 0, nil, err
		}
		return 0, &ef, nil
	default:
		h.drop(owner)
		return 0, nil, fmt.Errorf("handoff answered with %v frame", t)
	}
}

// handleOpen admits a client session: it peeks the compiled-circuit
// fingerprint (first 32 payload bytes) without decoding the keys, stores the
// raw payload for later replays, and places the session on its ring owner
// before accepting — the client's accept means the keys are on a worker.
func (h *relayHandler) handleOpen(payload []byte) bool {
	r := h.r
	if r.draining.Load() {
		r.rejShutdown.Add(1)
		return h.writeErr(wire.CodeShuttingDown, 0, "router is draining")
	}
	if len(payload) < 32 {
		return h.writeErr(wire.CodeBadMessage, 0, "session-open payload of %d bytes has no fingerprint", len(payload))
	}
	var fp [32]byte
	copy(fp[:], payload[:32])
	if r.registry.Size() > 0 && !r.registry.Has(fp) {
		return h.writeErr(wire.CodeFingerprintMismatch, 0,
			"no worker serves compilation %x (registry holds %d model(s)); recompile against a served model",
			fp[:8], r.registry.Size())
	}
	sess := r.sessions.add(payload)

	// Session opens carry no trace ID (tracing is per-request); the
	// admission span anchors the session's placement work under trace 0.
	admitStart := time.Now()
	admitSpan := telemetry.NewSpanID()
	defer func() {
		r.spans.Record(telemetry.KindScope, "admission", admitStart, time.Now(), 0, admitSpan, 0)
	}()

	var lastErr error
	for attempt := 0; attempt < r.cfg.RelayAttempts; attempt++ {
		placeStart := time.Now()
		owner, ok := r.ring.Owner(sess.id)
		if !ok {
			lastErr = errors.New("no live workers on the ring")
			break
		}
		r.spans.Record(telemetry.KindOp, "placement:"+owner, placeStart, time.Now(), 0, telemetry.NewSpanID(), admitSpan)
		wid, errf, err := h.handoff(sess, owner, 0, admitSpan)
		if err != nil {
			r.markDown(owner, err)
			r.failovers.Add(1)
			r.spans.Record(telemetry.KindOp, "failover:"+owner, placeStart, time.Now(), 0, telemetry.NewSpanID(), admitSpan)
			lastErr = err
			continue
		}
		if errf != nil {
			if errf.Code == wire.CodeShuttingDown {
				r.markDown(owner, errors.New(errf.Message))
				r.failovers.Add(1)
				r.spans.Record(telemetry.KindOp, "failover:"+owner, placeStart, time.Now(), 0, telemetry.NewSpanID(), admitSpan)
				lastErr = errf
				continue
			}
			// A typed refusal (bad keys, fingerprint mismatch) is the
			// session's real answer; placement elsewhere cannot help.
			r.sessions.remove(sess.id)
			return h.writeErr(errf.Code, 0, "%s", errf.Message)
		}
		_ = wid
		accept, err := (&wire.SessionAccept{SessionID: sess.id}).Encode()
		if err != nil {
			return h.writeErr(wire.CodeInternal, 0, "encoding accept: %v", err)
		}
		r.cfg.Logf("fleet: session %d placed on %s", sess.id, owner)
		r.cfg.Logger.Info("session placed", "session", sess.id, "worker", owner,
			"attempts", attempt+1)
		return wire.WriteFrame(h.client, wire.MsgSessionAccept, accept) == nil
	}
	r.sessions.remove(sess.id)
	return h.writeErr(wire.CodeInternal, 0, "no worker could admit the session after %d attempts: %v",
		r.cfg.RelayAttempts, lastErr)
}

// handleInfer relays one inference request to its session's owner, healing
// around failure: a dead or draining owner is removed from the ring and the
// request retried on the session's new owner (keys replayed via handoff), so
// a worker loss never surfaces to the client while any worker survives.
func (h *relayHandler) handleInfer(t wire.MsgType, payload []byte) bool {
	r := h.r
	if len(payload) < inferHdrLen {
		return h.writeErr(wire.CodeBadMessage, 0, "%v payload of %d bytes has no request header", t, len(payload))
	}
	reqID := binary.LittleEndian.Uint64(payload[offRequestID:])
	if r.draining.Load() {
		r.rejShutdown.Add(1)
		return h.writeErr(wire.CodeShuttingDown, reqID, "router is draining")
	}
	sid := binary.LittleEndian.Uint64(payload[offSessionID:])
	sess, ok := r.sessions.get(sid)
	if !ok {
		r.unknownSession.Add(1)
		return h.writeErr(wire.CodeUnknownSession, reqID, "session %d unknown or evicted at the router; re-open", sid)
	}
	traceID := binary.LittleEndian.Uint64(payload[offTraceID:])
	clientParent := binary.LittleEndian.Uint64(payload[offParent:])
	origTimeout := binary.LittleEndian.Uint32(payload[offTimeout:])
	start := time.Now()

	// The router's relay span interposes between the client's span and the
	// worker's request scope: the parent-span header slot is rewritten to
	// relaySpan, so worker spans attach under the router, which attaches
	// under the client.
	relaySpan := telemetry.NewSpanID()
	binary.LittleEndian.PutUint64(payload[offParent:], relaySpan)

	r.relayWG.Add(1)
	defer r.relayWG.Done()
	r.relays.Add(1)

	var lastErr error
	for attempt := 0; attempt < r.cfg.RelayAttempts; attempt++ {
		attemptStart := time.Now()
		owner, ok := r.ring.Owner(sid)
		if !ok {
			lastErr = errors.New("no live workers on the ring")
			break
		}
		w := r.workers[owner]
		wid, errf, err := h.handoff(sess, owner, traceID, relaySpan)
		if err != nil {
			r.markDown(owner, err)
			r.failovers.Add(1)
			r.recordFailover(owner, attemptStart, traceID, relaySpan)
			lastErr = err
			continue
		}
		if errf != nil {
			if errf.Code == wire.CodeShuttingDown {
				r.markDown(owner, errors.New(errf.Message))
				r.failovers.Add(1)
				r.recordFailover(owner, attemptStart, traceID, relaySpan)
				lastErr = errf
				continue
			}
			return h.writeErr(errf.Code, reqID, "%s", errf.Message)
		}

		// Rewrite the mutable header fields for this attempt: the owner's
		// session ID, and the deadline budget that remains after time
		// already burned at the router (so a retried request cannot outlive
		// the client's deadline on a second worker).
		binary.LittleEndian.PutUint64(payload[offSessionID:], wid)
		if origTimeout != 0 {
			rem := int64(origTimeout) - time.Since(start).Milliseconds()
			if rem <= 0 {
				return h.writeErr(wire.CodeDeadlineExceeded, reqID,
					"deadline expired after %v at the router", time.Since(start).Round(time.Millisecond))
			}
			binary.LittleEndian.PutUint32(payload[offTimeout:], uint32(rem))
		}

		c, err := h.conn(owner)
		if err != nil {
			r.markDown(owner, err)
			r.failovers.Add(1)
			r.recordFailover(owner, attemptStart, traceID, relaySpan)
			lastErr = err
			continue
		}
		w.inflight.Add(1)
		err = wire.WriteFrame(c, t, payload)
		var (
			rt   wire.MsgType
			resp []byte
		)
		if err == nil {
			rt, resp, err = wire.ReadFrame(c, r.cfg.MaxFrame)
		}
		w.inflight.Add(-1)
		if err != nil {
			h.drop(owner)
			r.markDown(owner, err)
			r.failovers.Add(1)
			r.recordFailover(owner, attemptStart, traceID, relaySpan)
			lastErr = err
			continue
		}
		if rt == wire.MsgError {
			var ef wire.ErrorFrame
			if ef.Decode(resp) == nil {
				switch ef.Code {
				case wire.CodeUnknownSession:
					// The worker evicted the handed-off session; replay the
					// keys and retry the same owner.
					sess.invalidate(wid)
					r.unknownSession.Add(1)
					r.cfg.Logf("fleet: session %d (trace %016x) evicted on %s; replaying keys", sid, traceID, owner)
					lastErr = &ef
					continue
				case wire.CodeShuttingDown:
					sess.invalidate(wid)
					r.markDown(owner, errors.New(ef.Message))
					r.failovers.Add(1)
					lastErr = &ef
					continue
				}
			}
			// Any other error frame is the request's real answer (deadline,
			// queue full, bad tensor) — forward it verbatim.
		}
		w.relayed.Add(1)
		r.spans.Record(telemetry.KindScope, "relay:"+owner, start, time.Now(),
			traceID, relaySpan, clientParent)
		r.cfg.Logger.Info("relayed",
			"trace_id", fmt.Sprintf("%016x", traceID),
			"request", reqID, "worker", owner, "attempts", attempt+1,
			"dur", time.Since(start).Round(time.Microsecond))
		return wire.WriteFrame(h.client, rt, resp) == nil
	}
	r.cfg.Logger.Warn("relay failed",
		"trace_id", fmt.Sprintf("%016x", traceID),
		"request", reqID, "attempts", r.cfg.RelayAttempts, "err", fmt.Sprint(lastErr))
	return h.writeErr(wire.CodeInternal, reqID,
		"no worker could serve request %d (trace %016x) after %d attempts: %v",
		reqID, traceID, r.cfg.RelayAttempts, lastErr)
}

// recordFailover marks one abandoned relay attempt in the span ring.
func (r *Router) recordFailover(owner string, start time.Time, traceID, parent uint64) {
	r.spans.Record(telemetry.KindOp, "failover:"+owner, start, time.Now(),
		traceID, telemetry.NewSpanID(), parent)
}

// Metrics snapshots router and per-worker counters.
func (r *Router) Metrics() RouterMetrics {
	opened, evicted, active := r.sessions.stats()
	m := RouterMetrics{
		SessionsOpened:   opened,
		SessionsEvicted:  evicted,
		SessionsActive:   active,
		Relays:           r.relays.Load(),
		Failovers:        r.failovers.Load(),
		Handoffs:         r.handoffs.Load(),
		Rebalances:       r.rebalances.Load(),
		ProbeFailures:    r.probeFails.Load(),
		ClientErrors:     r.clientErrors.Load(),
		RejectedShutdown: r.rejShutdown.Load(),
		UnknownSessions:  r.unknownSession.Load(),
		RegistryModels:   r.registry.Size(),
		LiveWorkers:      r.ring.Size(),
		TraceSpans:       int(r.spans.SpanCount()),
		SpansDropped:     r.spans.Dropped(),
	}
	for _, w := range r.workerList {
		m.Workers = append(m.Workers, WorkerMetrics{
			Addr:          w.addr,
			Up:            w.up.Load(),
			Draining:      w.draining.Load(),
			Inflight:      w.inflight.Load(),
			Relayed:       w.relayed.Load(),
			Handoffs:      w.handoffs.Load(),
			Bootstraps:    w.bootstraps.Load(),
			MinHeadroom:   w.minHeadroom.Load(),
			HeadroomKnown: w.headroomKnown.Load(),
		})
	}
	return m
}

// Spans exposes the router's span ring (tests and the /trace endpoint).
func (r *Router) Spans() *telemetry.SpanRing { return r.spans }

// CollectTrace assembles the cross-process view of one trace (traceID 0
// collects everything): the router's own spans plus a trace dump from every
// live worker, each as a ProcessTrace with a distinct PID and its own epoch,
// ready for telemetry.WriteChromeTraceMulti. A worker that cannot be reached
// is skipped — a partial trace beats none — with the failure logged.
func (r *Router) CollectTrace(traceID uint64) []telemetry.ProcessTrace {
	procs := []telemetry.ProcessTrace{{
		Name:  "chet-router",
		PID:   1,
		Epoch: r.spans.Epoch(),
		Spans: telemetry.FilterTrace(r.spans.Snapshot(), traceID),
	}}
	for i, w := range r.workerList {
		if !w.up.Load() {
			continue
		}
		pt, err := r.dumpWorker(w.addr, traceID)
		if err != nil {
			r.cfg.Logger.Warn("trace dump failed", "worker", w.addr, "err", err.Error())
			continue
		}
		pt.PID = 2 + i
		procs = append(procs, pt)
	}
	return procs
}

// dumpWorker runs one trace-dump exchange against a worker.
func (r *Router) dumpWorker(addr string, traceID uint64) (telemetry.ProcessTrace, error) {
	var pt telemetry.ProcessTrace
	c, err := net.DialTimeout("tcp", addr, r.cfg.DialTimeout)
	if err != nil {
		return pt, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(r.cfg.ProbeTimeout))
	req, err := (&wire.TraceDump{TraceID: traceID}).Encode()
	if err != nil {
		return pt, err
	}
	if err := wire.WriteFrame(c, wire.MsgTraceDump, req); err != nil {
		return pt, err
	}
	t, resp, err := wire.ReadFrame(c, r.cfg.MaxFrame)
	if err != nil {
		return pt, err
	}
	if t != wire.MsgTraceDumpAck {
		return pt, fmt.Errorf("trace dump answered with %v frame", t)
	}
	var ack wire.TraceDumpAck
	if err := ack.Decode(resp); err != nil {
		return pt, err
	}
	name := ack.Process
	if name == "" {
		name = "worker:" + addr
	}
	pt.Name = name
	pt.Epoch = time.Unix(0, ack.EpochUnixNano)
	pt.Spans = ack.Spans
	return pt, nil
}
