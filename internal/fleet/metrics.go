package fleet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"

	"chet/internal/telemetry"
)

// RouterMetrics is a point-in-time snapshot of the router's counters.
type RouterMetrics struct {
	SessionsOpened  uint64 // client sessions ever admitted
	SessionsEvicted uint64 // sessions dropped by the LRU table
	SessionsActive  int    // sessions currently tracked

	Relays           uint64 // inference requests relayed (counted once, not per attempt)
	Failovers        uint64 // relay attempts abandoned after a worker failure
	Handoffs         uint64 // session-handoff frames acked (placements + key replays)
	Rebalances       uint64 // ring membership changes (removals + readmissions)
	ProbeFailures    uint64 // individual health-probe failures
	ClientErrors     uint64 // error frames the router originated toward clients
	RejectedShutdown uint64 // opens/requests refused while draining
	UnknownSessions  uint64 // unknown-session errors (router table misses + worker evictions)

	RegistryModels int // models in the replicated registry view
	LiveWorkers    int // workers currently on the ring

	TraceSpans   int    // spans retained in the router's span ring
	SpansDropped uint64 // spans evicted from the ring by wraparound

	Workers []WorkerMetrics // per-worker breakdown, in configuration order
}

// WorkerMetrics is the router's per-worker view.
type WorkerMetrics struct {
	Addr     string
	Up       bool   // on the ring
	Draining bool   // last probe reported draining
	Inflight int64  // requests currently relayed to this worker
	Relayed  uint64 // responses delivered from this worker
	Handoffs uint64 // sessions handed to this worker

	// Ciphertext-budget telemetry scraped from health acks.
	Bootstraps    uint64 // cumulative bootstrap refreshes on this worker
	MinHeadroom   int64  // low-water mark of levels above the refresh floor
	HeadroomKnown bool   // false until the worker reports a multiplicative op
}

// ObservabilityMux returns an http.Handler exposing the router's live state:
// /metrics (Prometheus text exposition), /trace (merged cross-process Chrome
// trace; ?id=<hex trace ID> filters to one request, no id dumps everything),
// and /debug/pprof/*, mirroring the worker-side mux so the same scrape
// config covers the whole fleet.
func (r *Router) ObservabilityMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeRouterProm(w, r.Metrics())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		var traceID uint64
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 16, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad trace id %q: %v", idStr, err), http.StatusBadRequest)
				return
			}
			traceID = id
		}
		w.Header().Set("Content-Type", "application/json")
		if err := telemetry.WriteChromeTraceMulti(w, r.CollectTrace(traceID), nil); err != nil {
			r.cfg.Logger.Warn("trace export failed", "err", err.Error())
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeRouterProm renders a RouterMetrics snapshot in the Prometheus text
// exposition format (version 0.0.4), handwritten because the repo takes no
// dependencies.
func writeRouterProm(w io.Writer, m RouterMetrics) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("chet_router_sessions_opened_total", "Client sessions admitted by the router.", m.SessionsOpened)
	counter("chet_router_sessions_evicted_total", "Sessions evicted by the router's LRU table.", m.SessionsEvicted)
	gauge("chet_router_sessions_active", "Sessions currently tracked by the router.", int64(m.SessionsActive))
	counter("chet_router_relays_total", "Inference requests relayed to workers.", m.Relays)
	counter("chet_router_failovers_total", "Relay attempts abandoned after a worker failure.", m.Failovers)
	counter("chet_router_handoffs_total", "Session-handoff frames acked by workers.", m.Handoffs)
	counter("chet_router_ring_rebalances_total", "Consistent-hash ring membership changes.", m.Rebalances)
	counter("chet_router_probe_failures_total", "Health-probe failures.", m.ProbeFailures)
	counter("chet_router_client_errors_total", "Error frames the router originated toward clients.", m.ClientErrors)
	counter("chet_router_rejected_shutdown_total", "Opens and requests refused while draining.", m.RejectedShutdown)
	counter("chet_router_unknown_sessions_total", "Unknown-session errors seen at the router.", m.UnknownSessions)
	gauge("chet_router_registry_models", "Models in the replicated registry view.", int64(m.RegistryModels))
	gauge("chet_router_live_workers", "Workers currently on the ring.", int64(m.LiveWorkers))
	gauge("chet_router_trace_spans", "Spans retained in the router's span ring.", int64(m.TraceSpans))
	counter("chet_router_trace_spans_dropped_total", "Spans evicted from the router's span ring by wraparound.", m.SpansDropped)

	fmt.Fprintf(w, "# HELP chet_router_worker_up Worker ring membership (1 = on the ring).\n# TYPE chet_router_worker_up gauge\n")
	for _, wk := range m.Workers {
		up := 0
		if wk.Up {
			up = 1
		}
		fmt.Fprintf(w, "chet_router_worker_up{worker=%q} %d\n", wk.Addr, up)
	}
	fmt.Fprintf(w, "# HELP chet_router_worker_inflight Requests currently relayed per worker.\n# TYPE chet_router_worker_inflight gauge\n")
	for _, wk := range m.Workers {
		fmt.Fprintf(w, "chet_router_worker_inflight{worker=%q} %d\n", wk.Addr, wk.Inflight)
	}
	fmt.Fprintf(w, "# HELP chet_router_worker_relayed_total Responses delivered per worker.\n# TYPE chet_router_worker_relayed_total counter\n")
	for _, wk := range m.Workers {
		fmt.Fprintf(w, "chet_router_worker_relayed_total{worker=%q} %d\n", wk.Addr, wk.Relayed)
	}
	fmt.Fprintf(w, "# HELP chet_router_worker_handoffs_total Sessions handed to each worker.\n# TYPE chet_router_worker_handoffs_total counter\n")
	for _, wk := range m.Workers {
		fmt.Fprintf(w, "chet_router_worker_handoffs_total{worker=%q} %d\n", wk.Addr, wk.Handoffs)
	}
	fmt.Fprintf(w, "# HELP chet_router_worker_bootstraps_total Bootstrap refreshes per worker (from health acks).\n# TYPE chet_router_worker_bootstraps_total counter\n")
	for _, wk := range m.Workers {
		fmt.Fprintf(w, "chet_router_worker_bootstraps_total{worker=%q} %d\n", wk.Addr, wk.Bootstraps)
	}
	fmt.Fprintf(w, "# HELP chet_router_worker_min_headroom_levels Low-water mark of ciphertext levels above the refresh floor per worker; absent until the worker reports one.\n# TYPE chet_router_worker_min_headroom_levels gauge\n")
	for _, wk := range m.Workers {
		if wk.HeadroomKnown {
			fmt.Fprintf(w, "chet_router_worker_min_headroom_levels{worker=%q} %d\n", wk.Addr, wk.MinHeadroom)
		}
	}
}
