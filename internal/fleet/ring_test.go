package fleet

import (
	"fmt"
	"sync"
	"testing"
)

// placements maps every key in [1, n] to its owner under the ring's current
// membership.
func placements(r *Ring, n int) map[uint64]string {
	out := make(map[uint64]string, n)
	for k := uint64(1); k <= uint64(n); k++ {
		owner, ok := r.Owner(k)
		if !ok {
			panic("empty ring during placement sweep")
		}
		out[k] = owner
	}
	return out
}

func workers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7100", i+1)
	}
	return out
}

// TestRingDeterministicPlacement pins the core routing contract: placement
// is a pure function of (membership, key), independent of insertion order.
func TestRingDeterministicPlacement(t *testing.T) {
	const keys = 2000
	a, b := NewRing(0), NewRing(0)
	ws := workers(5)
	for _, w := range ws {
		a.Add(w)
	}
	for i := len(ws) - 1; i >= 0; i-- { // reverse insertion order
		b.Add(ws[i])
	}
	pa, pb := placements(a, keys), placements(b, keys)
	for k, owner := range pa {
		if pb[k] != owner {
			t.Fatalf("key %d: owner %q under one insertion order, %q under another", k, owner, pb[k])
		}
	}
	// Repeated lookups agree with themselves.
	for k, owner := range pa {
		if again, _ := a.Owner(k); again != owner {
			t.Fatalf("key %d: owner changed between lookups with no membership change", k)
		}
	}
}

// TestRingBoundedMovesOnJoinAndLeave is the consistent-hashing property: a
// membership change of one worker among N may move only about K/N of K keys.
// The bound is checked with slack (2x the fair share) because vnode
// placement is hash-random, not exact.
func TestRingBoundedMovesOnJoinAndLeave(t *testing.T) {
	const keys = 4000
	for _, n := range []int{2, 4, 8} {
		r := NewRing(0)
		ws := workers(n)
		for _, w := range ws {
			r.Add(w)
		}
		before := placements(r, keys)

		joined := "10.0.1.99:7100"
		r.Add(joined)
		after := placements(r, keys)
		moved := 0
		for k := range before {
			if before[k] != after[k] {
				moved++
				// Every moved key must move TO the joiner; anything else
				// reshuffled keys between surviving workers.
				if after[k] != joined {
					t.Fatalf("n=%d: key %d moved %q -> %q, not to the joining worker",
						n, k, before[k], after[k])
				}
			}
		}
		fair := keys / (n + 1)
		if moved > 2*fair {
			t.Fatalf("n=%d: join moved %d of %d keys, want <= ~%d (2x fair share)", n, moved, keys, 2*fair)
		}

		// Leave: removing the joiner must restore the prior placement
		// exactly — survivors' keys never moved, so they have nowhere to
		// move back from.
		r.Remove(joined)
		restored := placements(r, keys)
		for k := range before {
			if restored[k] != before[k] {
				t.Fatalf("n=%d: key %d at %q after leave, was %q before join", n, k, restored[k], before[k])
			}
		}
	}
}

// TestRingLoadSpread checks vnodes keep the per-worker share of keys within
// a loose factor of fair, so no worker silently shoulders most of the fleet.
func TestRingLoadSpread(t *testing.T) {
	const keys = 8000
	r := NewRing(0)
	ws := workers(4)
	for _, w := range ws {
		r.Add(w)
	}
	counts := map[string]int{}
	for k, owner := range placements(r, keys) {
		_ = k
		counts[owner]++
	}
	fair := keys / len(ws)
	for w, c := range counts {
		if c < fair/3 || c > 3*fair {
			t.Fatalf("worker %s owns %d of %d keys (fair %d); vnode spread is degenerate", w, c, keys, fair)
		}
	}
}

// TestRingEmptyAndMembership covers the edges: empty ring refuses lookups,
// duplicate adds and absent removes are rejected, version counts changes.
func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner(1); ok {
		t.Fatal("empty ring returned an owner")
	}
	if !r.Add("a") || r.Add("a") {
		t.Fatal("Add must succeed once and reject duplicates")
	}
	if !r.Add("b") {
		t.Fatal(`Add("b") failed`)
	}
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members() = %v", got)
	}
	if r.Remove("zzz") {
		t.Fatal("Remove of an absent member succeeded")
	}
	if !r.Remove("a") || r.Size() != 1 {
		t.Fatalf("Remove(a) failed or size wrong: %d", r.Size())
	}
	if v := r.Version(); v != 3 { // add, add, remove
		t.Fatalf("version %d after 3 membership changes", v)
	}
	if owner, ok := r.Owner(42); !ok || owner != "b" {
		t.Fatalf("single-member ring owner = %q, %v", owner, ok)
	}
}

// TestRingConcurrentLookupAndRebalance hammers lookups while membership
// churns. Run under -race (ci.sh does); every lookup must return a member
// that was live at some point — never garbage, never a panic.
func TestRingConcurrentLookupAndRebalance(t *testing.T) {
	r := NewRing(16)
	ws := workers(6)
	valid := map[string]bool{}
	for _, w := range ws {
		r.Add(w)
		valid[w] = true
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := uint64(g * 1000); ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				if owner, ok := r.Owner(k); ok && !valid[owner] {
					t.Errorf("lookup returned unknown member %q", owner)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		w := ws[i%len(ws)]
		if i%2 == 0 {
			r.Remove(w)
		} else {
			r.Add(w)
		}
	}
	close(stop)
	wg.Wait()
}
