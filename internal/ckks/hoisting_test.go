package ckks

import (
	"math/rand"
	"testing"
)

// ctEqual reports whether two ciphertexts are bit-identical.
func ctEqual(a, b *Ciphertext) bool {
	if a.Lvl != b.Lvl || a.Scale != b.Scale {
		return false
	}
	for _, pair := range [2][2][][]uint64{
		{a.C0.Coeffs, b.C0.Coeffs},
		{a.C1.Coeffs, b.C1.Coeffs},
	} {
		pa, pb := pair[0], pair[1]
		if len(pa) != len(pb) {
			return false
		}
		for i := range pa {
			for j := range pa[i] {
				if pa[i][j] != pb[i][j] {
					return false
				}
			}
		}
	}
	return true
}

// TestRotateHoistedMatchesRotateLeft is the hoisting property test: for
// random ciphertexts, random levels, and random rotation sets (including
// zero, negative, and repeated amounts), RotateHoisted must produce
// byte-identical ciphertexts to per-amount RotateLeft calls.
func TestRotateHoistedMatchesRotateLeft(t *testing.T) {
	tc := newTestContext(t)
	slots := tc.params.Slots()
	rotations := []int{1, 2, 3, 5, 7, 8, 16, 100, slots - 1}
	rtks := tc.kgen.GenRotationKeys(tc.sk, rotations, false)
	ev := NewEvaluator(tc.params, nil, rtks)
	rng := rand.New(rand.NewSource(97))

	for trial := 0; trial < 6; trial++ {
		values := randomVector(slots, 4, int64(200+trial))
		pt := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
		ct := tc.encr.Encrypt(pt)
		level := rng.Intn(tc.params.MaxLevel() + 1)
		ev.DropToLevel(ct, level)

		// Random subset of the keyed amounts, plus edge cases.
		ks := []int{0, -slots} // both reduce to 0 mod slots
		for _, k := range rotations {
			if rng.Intn(2) == 0 {
				ks = append(ks, k)
			}
			if rng.Intn(4) == 0 {
				ks = append(ks, k-slots) // negative alias of a keyed amount
			}
		}
		ks = append(ks, ks[len(ks)-1]) // repeated amount

		hoisted := ev.RotateHoisted(ct, ks)
		for i, k := range ks {
			want := ev.RotateLeft(ct, k)
			if !ctEqual(hoisted[i], want) {
				t.Fatalf("trial %d level %d: RotateHoisted k=%d differs from RotateLeft", trial, level, k)
			}
		}
	}
}

// TestRotateHoistedDecrypts checks end-to-end correctness: hoisted
// rotations decrypt to the rotated plaintext within CKKS noise.
func TestRotateHoistedDecrypts(t *testing.T) {
	tc := newTestContext(t)
	slots := tc.params.Slots()
	rotations := []int{1, 3, 8, 17}
	rtks := tc.kgen.GenRotationKeys(tc.sk, rotations, false)
	ev := NewEvaluator(tc.params, nil, rtks)

	values := randomVector(slots, 4, 77)
	pt := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	ct := tc.encr.Encrypt(pt)

	outs := ev.RotateHoisted(ct, rotations)
	for i, k := range rotations {
		got := tc.enc.Decode(tc.decr.Decrypt(outs[i]))
		want := make([]float64, slots)
		for j := range want {
			want[j] = values[(j+k)%slots]
		}
		if d := maxAbsDiff(want, got); d > 1e-4 {
			t.Fatalf("hoisted rotation by %d: error %g too large", k, d)
		}
	}
}

// TestHoistedDecompositionReuse checks that a shared decomposition is not
// corrupted by rotations drawn from it: rotating twice by the same amount
// from one decomposition, interleaved with another amount, stays
// bit-identical, and Release does not affect previously produced outputs.
func TestHoistedDecompositionReuse(t *testing.T) {
	tc := newTestContext(t)
	slots := tc.params.Slots()
	rtks := tc.kgen.GenRotationKeys(tc.sk, []int{1, 5}, false)
	ev := NewEvaluator(tc.params, nil, rtks)

	values := randomVector(slots, 4, 123)
	pt := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	ct := tc.encr.Encrypt(pt)

	dec := ev.HoistedDecompose(ct)
	if dec.Level() != ct.Lvl {
		t.Fatalf("decomposition level %d, want %d", dec.Level(), ct.Lvl)
	}
	first := ev.RotateLeftHoisted(ct, dec, 1)
	_ = ev.RotateLeftHoisted(ct, dec, 5)
	second := ev.RotateLeftHoisted(ct, dec, 1)
	if !ctEqual(first, second) {
		t.Fatal("decomposition reuse changed the result of rotation by 1")
	}
	dec.Release()
	want := ev.RotateLeft(ct, 1)
	if !ctEqual(first, want) {
		t.Fatal("hoisted rotation differs from RotateLeft after Release")
	}
}

// TestHoistedLevelMismatchPanics pins the guard against applying a stale
// decomposition to a ciphertext whose level has since changed.
func TestHoistedLevelMismatchPanics(t *testing.T) {
	tc := newTestContext(t)
	rtks := tc.kgen.GenRotationKeys(tc.sk, []int{1}, false)
	ev := NewEvaluator(tc.params, nil, rtks)

	values := randomVector(tc.params.Slots(), 4, 9)
	pt := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	ct := tc.encr.Encrypt(pt)
	dec := ev.HoistedDecompose(ct)
	ev.DropToLevel(ct, ct.Lvl-1)

	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on level mismatch")
		}
	}()
	ev.RotateLeftHoisted(ct, dec, 1)
}
