package ckks

import (
	"math"
	"testing"
)

func TestNewParametersValidation(t *testing.T) {
	base := ParametersLiteral{LogN: 10, LogQ: []int{50, 40}, LogP: 50, LogScale: 40}

	cases := []struct {
		name string
		mut  func(*ParametersLiteral)
	}{
		{"logN too small", func(l *ParametersLiteral) { l.LogN = 3 }},
		{"logN too large", func(l *ParametersLiteral) { l.LogN = 17 }},
		{"empty chain", func(l *ParametersLiteral) { l.LogQ = nil }},
		{"chain prime too small", func(l *ParametersLiteral) { l.LogQ = []int{50, 10} }},
		{"chain prime too large", func(l *ParametersLiteral) { l.LogQ = []int{61} }},
		{"special prime too small", func(l *ParametersLiteral) { l.LogP = 5 }},
		{"logSlots >= logN", func(l *ParametersLiteral) { l.LogSlots = 10 }},
	}
	for _, tc := range cases {
		lit := base
		tc.mut(&lit)
		if _, err := NewParameters(lit); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestParametersAccessors(t *testing.T) {
	p, err := NewParameters(ParametersLiteral{
		LogN: 10, LogQ: []int{50, 40, 40}, LogP: 50, LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 1024 || p.Slots() != 512 || p.LogSlots() != 9 {
		t.Fatalf("dims wrong: N=%d slots=%d", p.N(), p.Slots())
	}
	if p.MaxLevel() != 2 {
		t.Fatalf("MaxLevel = %d", p.MaxLevel())
	}
	if got := p.LogQTotal(); math.Abs(got-130) > 2 {
		t.Fatalf("LogQTotal = %g, want ~130", got)
	}
	chain := p.QChain()
	chain[0] = 0 // must be a copy
	if p.Qi(0) == 0 {
		t.Fatal("QChain leaked internal storage")
	}
	if p.PSpecial()>>49 != 1 {
		t.Fatalf("special prime %d is not 50-bit", p.PSpecial())
	}
}

func TestScalarResiduesBigPathMatchesSmallPath(t *testing.T) {
	tc := newTestContext(t)
	r := tc.params.Ring()
	level := tc.params.MaxLevel()

	// Values where both paths apply: verify consistency at the boundary by
	// scaling the same x with a factor that splits across the 2^62 limit.
	x := 0.7310581
	small := make([]uint64, level+1)
	scalarResiduesInto(small, x, math.Exp2(50), r, level)
	bigP := make([]uint64, level+1)
	scalarResiduesInto(bigP, x*math.Exp2(50), 1, r, level) // forces value via rounding in float64
	_ = bigP

	// Direct check of the big path: round(x*2^70) mod q must equal
	// (round(x*2^20) * 2^50) mod q up to the float64 rounding of x*2^20.
	big70 := make([]uint64, level+1)
	scalarResiduesInto(big70, x, math.Exp2(70), r, level)
	for i := range big70 {
		q := r.Moduli[i].Q
		if big70[i] >= q {
			t.Fatalf("residue %d out of range", i)
		}
	}
	if len(small) != level+1 {
		t.Fatalf("residue count %d", len(small))
	}
}

func TestAddScalarAtHugeScale(t *testing.T) {
	// Grow the ciphertext scale past 2^62 (no rescale between two scalar
	// multiplications), then AddScalar must still be exact.
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	scale := tc.params.DefaultScale() // 2^40
	values := []float64{0.25, -0.5}
	ct := tc.encr.Encrypt(tc.enc.Encode(values, scale, tc.params.MaxLevel()))

	big := ev.MulScalar(ct, 1, math.Exp2(30)) // scale 2^70
	big = ev.AddScalar(big, 1.5)
	ev.Rescale(big) // back toward 2^30ish

	got := tc.enc.Decode(tc.decr.Decrypt(big))
	for i, want := range []float64{1.75, 1.0} {
		if math.Abs(got[i]-want) > 1e-3 {
			t.Fatalf("slot %d: got %g want %g", i, got[i], want)
		}
	}
}

func TestRescaleAtLevelZeroPanics(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	ct := tc.encr.Encrypt(tc.enc.Encode([]float64{1}, tc.params.DefaultScale(), tc.params.MaxLevel()))
	ev.DropToLevel(ct, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ev.Rescale(ct)
}

func TestDropToLevelCannotRaise(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	ct := tc.encr.Encrypt(tc.enc.Encode([]float64{1}, tc.params.DefaultScale(), tc.params.MaxLevel()))
	ev.DropToLevel(ct, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ev.DropToLevel(ct, 2)
}

func TestMulPlainLevelGuard(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	scale := tc.params.DefaultScale()
	ct := tc.encr.Encrypt(tc.enc.Encode([]float64{1}, scale, tc.params.MaxLevel()))
	lowPT := tc.enc.Encode([]float64{1}, scale, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for plaintext below ciphertext level")
		}
	}()
	ev.MulPlain(ct, lowPT)
}

func TestMulWithoutRelinKeyPanics(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	ct := tc.encr.Encrypt(tc.enc.Encode([]float64{1}, tc.params.DefaultScale(), tc.params.MaxLevel()))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ev.Mul(ct, ct)
}

func TestEncoderLinearity(t *testing.T) {
	// encode(a) + encode(b) decodes to a + b: the canonical embedding is
	// linear, so plaintext addition is coefficient addition.
	tc := newTestContext(t)
	r := tc.params.Ring()
	level := tc.params.MaxLevel()
	a := randomVector(tc.params.Slots(), 3, 51)
	b := randomVector(tc.params.Slots(), 3, 52)
	pa := tc.enc.Encode(a, tc.params.DefaultScale(), level)
	pb := tc.enc.Encode(b, tc.params.DefaultScale(), level)

	sum := r.NewPoly(level)
	r.Add(pa.Value, pb.Value, sum, level)
	got := tc.enc.Decode(&Plaintext{Value: sum, Scale: pa.Scale, Lvl: level})
	for i := range a {
		if math.Abs(got[i]-(a[i]+b[i])) > 1e-6 {
			t.Fatalf("slot %d: got %g want %g", i, got[i], a[i]+b[i])
		}
	}
}

func TestEncoderMultiplicationHomomorphism(t *testing.T) {
	// The negacyclic product of two encodings decodes to the slotwise
	// product at the product scale — the property all FHE SIMD rests on.
	tc := newTestContext(t)
	r := tc.params.Ring()
	level := tc.params.MaxLevel()
	a := randomVector(tc.params.Slots(), 2, 53)
	b := randomVector(tc.params.Slots(), 2, 54)
	pa := tc.enc.Encode(a, tc.params.DefaultScale(), level)
	pb := tc.enc.Encode(b, tc.params.DefaultScale(), level)

	prod := r.NewPoly(level)
	r.MulCoeffs(pa.Value, pb.Value, prod, level)
	got := tc.enc.Decode(&Plaintext{Value: prod, Scale: pa.Scale * pb.Scale, Lvl: level})
	for i := range a {
		if math.Abs(got[i]-a[i]*b[i]) > 1e-4 {
			t.Fatalf("slot %d: got %g want %g", i, got[i], a[i]*b[i])
		}
	}
}

func TestEncodeTooManyValuesPanics(t *testing.T) {
	tc := newTestContext(t)
	vals := make([]float64, tc.params.Slots()+1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tc.enc.Encode(vals, tc.params.DefaultScale(), tc.params.MaxLevel())
}
