package ckks

import (
	"math/big"
	"testing"
)

// centeredCoeffs returns the centered integer coefficients of a plaintext.
func centeredCoeffs(params *Parameters, pt *Plaintext) []*big.Int {
	r := params.Ring()
	coef := r.NewPoly(pt.Lvl)
	coef.Copy(pt.Value)
	r.InvNTT(coef, pt.Lvl)
	return r.PolyToBigintCentered(coef, pt.Lvl)
}

// TestModRaiseCongruence checks the defining property of the mod raise: the
// lifted ciphertext decrypts to m + q0*I, i.e. its coefficients are
// congruent to the level-0 decryption mod q0, and the residual integer
// polynomial I stays small (bounded by the key's hamming weight).
func TestModRaiseCongruence(t *testing.T) {
	tc := newTestContext(t)
	params := tc.params
	slots := params.Slots()
	values := randomVector(slots, 3, 42)

	// Encrypt at the bottom of the chain, as an exhausted ciphertext would be.
	pt := tc.enc.Encode(values, params.DefaultScale(), 0)
	ct := tc.encr.Encrypt(pt)
	if ct.Lvl != 0 {
		t.Fatalf("encrypt level = %d, want 0", ct.Lvl)
	}

	ev := NewEvaluator(params, tc.rlk, nil)
	raised := ev.ModRaise(ct)
	if raised.Lvl != params.MaxLevel() {
		t.Fatalf("raised level = %d, want %d", raised.Lvl, params.MaxLevel())
	}
	if raised.Scale != ct.Scale {
		t.Fatalf("raised scale = %g, want %g", raised.Scale, ct.Scale)
	}

	low := centeredCoeffs(params, tc.decr.Decrypt(ct))
	high := centeredCoeffs(params, tc.decr.Decrypt(raised))

	q0 := new(big.Int).SetUint64(params.Qi(0))
	maxI := new(big.Int)
	diff := new(big.Int)
	for j := range low {
		diff.Sub(high[j], low[j])
		if new(big.Int).Mod(diff, q0).Sign() != 0 {
			t.Fatalf("coefficient %d: raised value not congruent mod q0 (diff %s)", j, diff)
		}
		diff.Quo(diff, q0).Abs(diff)
		if diff.Cmp(maxI) > 0 {
			maxI.Set(diff)
		}
	}
	// I = (high - low)/q0 must be small: |I| <= h + 1 with h the number of
	// nonzero secret coefficients (<= N). A loose bound still catches a
	// broken lift, which is off by ~q_i/q0 factors.
	bound := new(big.Int).SetInt64(int64(params.N() + 2))
	if maxI.Cmp(bound) > 0 {
		t.Fatalf("residual I too large: %s > %s", maxI, bound)
	}
	if maxI.Sign() == 0 {
		t.Fatal("residual I identically zero: mod raise did not exercise the lift")
	}
}

// TestModRaiseRejectsHighLevel confirms the level guard.
func TestModRaiseRejectsHighLevel(t *testing.T) {
	tc := newTestContext(t)
	pt := tc.enc.Encode([]float64{1}, tc.params.DefaultScale(), tc.params.MaxLevel())
	ct := tc.encr.Encrypt(pt)
	ev := NewEvaluator(tc.params, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("ModRaise on a non-zero level should panic")
		}
	}()
	ev.ModRaise(ct)
}

// TestModRaiseDeterministic: the lift is a pure function of the input.
func TestModRaiseDeterministic(t *testing.T) {
	tc := newTestContext(t)
	pt := tc.enc.Encode(randomVector(tc.params.Slots(), 2, 7), tc.params.DefaultScale(), 0)
	ct := tc.encr.Encrypt(pt)
	ev := NewEvaluator(tc.params, nil, nil)
	a := ev.ModRaise(ct)
	b := ev.ModRaise(ct)
	for i := range a.C0.Coeffs {
		for j := range a.C0.Coeffs[i] {
			if a.C0.Coeffs[i][j] != b.C0.Coeffs[i][j] || a.C1.Coeffs[i][j] != b.C1.Coeffs[i][j] {
				t.Fatalf("mod raise not deterministic at row %d coeff %d", i, j)
			}
		}
	}
}
