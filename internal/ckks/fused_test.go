package ckks

import (
	"testing"
)

// equalCiphertexts reports whether a and b agree bit-for-bit on every
// coefficient row up to their level, plus scale and level themselves.
func equalCiphertexts(t *testing.T, a, b *Ciphertext) {
	t.Helper()
	if a.Lvl != b.Lvl {
		t.Fatalf("level mismatch: %d vs %d", a.Lvl, b.Lvl)
	}
	if a.Scale != b.Scale {
		t.Fatalf("scale mismatch: %g vs %g", a.Scale, b.Scale)
	}
	if (a.C2 == nil) != (b.C2 == nil) {
		t.Fatalf("degree mismatch")
	}
	cmp := func(name string, pa, pb [][]uint64) {
		for i := 0; i <= a.Lvl; i++ {
			for k := range pa[i] {
				if pa[i][k] != pb[i][k] {
					t.Fatalf("%s row %d coeff %d: %d vs %d", name, i, k, pa[i][k], pb[i][k])
				}
			}
		}
	}
	cmp("C0", a.C0.Coeffs, b.C0.Coeffs)
	cmp("C1", a.C1.Coeffs, b.C1.Coeffs)
	if a.C2 != nil {
		cmp("C2", a.C2.Coeffs, b.C2.Coeffs)
	}
}

// TestRelinearizeRescaleMatchesUnfused pins the fused op's contract: at
// every level down to 1, the fused pass is bit-identical to rescale
// followed by relinearize.
func TestRelinearizeRescaleMatchesUnfused(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	scale := tc.params.DefaultScale()
	slots := tc.params.Slots()

	cta := tc.encr.Encrypt(tc.enc.Encode(randomVector(slots, 1, 41), scale, tc.params.MaxLevel()))
	ctb := tc.encr.Encrypt(tc.enc.Encode(randomVector(slots, 1, 42), scale, tc.params.MaxLevel()))

	for level := tc.params.MaxLevel(); level >= 1; level-- {
		d2 := ev.MulNoRelin(cta, ctb)

		unfused := d2.CopyNew()
		ev.Rescale(unfused)
		unfused = ev.Relinearize(unfused)

		fused := ev.RelinearizeRescale(d2)
		equalCiphertexts(t, fused, unfused)

		// The input must come through untouched: run the fused op twice
		// and require identical output.
		again := ev.RelinearizeRescale(d2)
		equalCiphertexts(t, again, fused)

		if level > 1 {
			next := ev.Relinearize(d2)
			ev.Rescale(next)
			cta, ctb = next, next.CopyNew()
		}
	}
}

// TestRelinearizeRescaleDegreeOne checks the degree-1 fallback: no key
// switch, just a functional rescale.
func TestRelinearizeRescaleDegreeOne(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	scale := tc.params.DefaultScale()
	ct := tc.encr.Encrypt(tc.enc.Encode(randomVector(tc.params.Slots(), 1, 43), scale, tc.params.MaxLevel()))
	ct = ev.MulScalar(ct, 3.0, scale)

	want := ct.CopyNew()
	ev.Rescale(want)
	got := ev.RelinearizeRescale(ct)
	equalCiphertexts(t, got, want)
	if ct.Lvl != tc.params.MaxLevel() {
		t.Fatal("degree-1 fused rescale mutated its input")
	}
}

// TestRelinearizeRescaleWithWorkers pins that intra-op parallelism does not
// change a single bit of the fused output.
func TestRelinearizeRescaleWithWorkers(t *testing.T) {
	tc := newTestContext(t)
	serial := NewEvaluator(tc.params, tc.rlk, nil)
	par := NewEvaluator(tc.params, tc.rlk, nil).SetIntraOpWorkers(4)
	scale := tc.params.DefaultScale()
	slots := tc.params.Slots()
	cta := tc.encr.Encrypt(tc.enc.Encode(randomVector(slots, 1, 44), scale, tc.params.MaxLevel()))
	ctb := tc.encr.Encrypt(tc.enc.Encode(randomVector(slots, 1, 45), scale, tc.params.MaxLevel()))

	d2 := serial.MulNoRelin(cta, ctb)
	a := serial.RelinearizeRescale(d2)
	b := par.RelinearizeRescale(d2)
	equalCiphertexts(t, a, b)
}

// TestRecycleRoundTrip checks that recycled ciphertext storage is reused
// without corrupting subsequent results.
func TestRecycleRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	scale := tc.params.DefaultScale()
	slots := tc.params.Slots()
	cta := tc.encr.Encrypt(tc.enc.Encode(randomVector(slots, 1, 46), scale, tc.params.MaxLevel()))
	ctb := tc.encr.Encrypt(tc.enc.Encode(randomVector(slots, 1, 47), scale, tc.params.MaxLevel()))

	want := ev.RelinearizeRescale(ev.MulNoRelin(cta, ctb))
	for i := 0; i < 4; i++ {
		d2 := ev.MulNoRelin(cta, ctb)
		got := ev.RelinearizeRescale(d2)
		ev.Recycle(d2)
		equalCiphertexts(t, got, want)
		ev.Recycle(got)
	}
}
