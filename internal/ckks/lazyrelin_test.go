package ckks

import (
	"math"
	"testing"
)

// mulVecs is the slotwise product oracle.
func mulVecs(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// TestMulNoRelinDegree2Decrypts: a lazy product carries its C2 component and
// decrypts (via + C2·s²) to the same slotwise product an eager Mul produces.
func TestMulNoRelinDegree2Decrypts(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	slots := tc.params.Slots()
	a := randomVector(slots, 2, 40)
	b := randomVector(slots, 2, 41)
	scale := tc.params.DefaultScale()
	level := tc.params.MaxLevel()
	cta := tc.encr.Encrypt(tc.enc.Encode(a, scale, level))
	ctb := tc.encr.Encrypt(tc.enc.Encode(b, scale, level))

	want := mulVecs(a, b)

	d2 := ev.MulNoRelin(cta, ctb)
	if d2.Degree() != 2 {
		t.Fatalf("MulNoRelin degree = %d, want 2", d2.Degree())
	}
	got := tc.enc.Decode(tc.decr.Decrypt(d2))
	if d := maxAbsDiff(want, got); d > 1e-3 {
		t.Fatalf("degree-2 decryption error %g too large", d)
	}

	relin := ev.Relinearize(d2)
	if relin.Degree() != 1 {
		t.Fatalf("Relinearize left degree %d", relin.Degree())
	}
	gotR := tc.enc.Decode(tc.decr.Decrypt(relin))
	if d := maxAbsDiff(want, gotR); d > 1e-3 {
		t.Fatalf("relinearized product error %g too large", d)
	}

	eager := tc.enc.Decode(tc.decr.Decrypt(ev.Mul(cta, ctb)))
	if d := maxAbsDiff(eager, gotR); d > 1e-4 {
		t.Fatalf("lazy and eager products diverge by %g", d)
	}
}

// TestDegree2LinearOpsCommuteWithRelin is the property the kernels' deferred
// relinearization rests on: Add, Sub, MulScalar, MulByI, and Rescale act
// componentwise on degree-2 ciphertexts, so applying them before the single
// Relinearize must decode to the same values as relinearizing each product
// first. Rescale-then-relin is exactly the ordering the activation kernel
// uses (one limb lighter at the key switch).
func TestDegree2LinearOpsCommuteWithRelin(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	slots := tc.params.Slots()
	a := randomVector(slots, 2, 42)
	b := randomVector(slots, 2, 43)
	c := randomVector(slots, 2, 44)
	scale := tc.params.DefaultScale()
	level := tc.params.MaxLevel()
	cta := tc.encr.Encrypt(tc.enc.Encode(a, scale, level))
	ctb := tc.encr.Encrypt(tc.enc.Encode(b, scale, level))
	ctc := tc.encr.Encrypt(tc.enc.Encode(c, scale, level))

	// Lazy: both products stay degree 2 through the linear combination and
	// the rescale; one relinearization at the end.
	lazyFn := func() *Ciphertext {
		p := ev.MulNoRelin(cta, ctb)
		q := ev.MulNoRelin(cta, ctc)
		s := ev.Add(p, ev.MulByI(q))
		s = ev.Sub(s, ev.MulByI(q))
		s = ev.MulScalar(s, 0.5, math.Exp2(2))
		ev.Rescale(s)
		return ev.Relinearize(s)
	}
	// Eager: relinearize each product at once, then the same linear ops.
	eagerFn := func() *Ciphertext {
		p := ev.Mul(cta, ctb)
		q := ev.Mul(cta, ctc)
		s := ev.Add(p, ev.MulByI(q))
		s = ev.Sub(s, ev.MulByI(q))
		s = ev.MulScalar(s, 0.5, math.Exp2(2))
		ev.Rescale(s)
		return s
	}

	lazy := lazyFn()
	eager := eagerFn()
	if lazy.Degree() != 1 {
		t.Fatalf("lazy path ended at degree %d", lazy.Degree())
	}
	if lazy.Lvl != eager.Lvl || math.Abs(lazy.Scale/eager.Scale-1) > 1e-12 {
		t.Fatalf("metadata diverges: lazy (lvl %d, scale %g) vs eager (lvl %d, scale %g)",
			lazy.Lvl, lazy.Scale, eager.Lvl, eager.Scale)
	}
	gl := tc.enc.Decode(tc.decr.Decrypt(lazy))
	ge := tc.enc.Decode(tc.decr.Decrypt(eager))
	if d := maxAbsDiff(gl, ge); d > 1e-4 {
		t.Fatalf("lazy and eager orderings diverge by %g", d)
	}
	want := mulVecs(a, b) // + i·q − i·q cancels; then ×0.5
	for i := range want {
		want[i] *= 0.5
	}
	if d := maxAbsDiff(want, gl); d > 1e-3 {
		t.Fatalf("lazy path error %g vs plaintext", d)
	}
}

// TestDegree2Guards pins the three failure modes that must be loud panics
// rather than silent corruption: a Galois automorphism on a degree-2
// ciphertext (the automorphism of s² is not covered by rotation keys), a
// product of an already-degree-2 operand, and relinearization without a key.
func TestDegree2Guards(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	slots := tc.params.Slots()
	scale := tc.params.DefaultScale()
	level := tc.params.MaxLevel()
	ct := tc.encr.Encrypt(tc.enc.Encode(randomVector(slots, 2, 45), scale, level))
	d2 := ev.MulNoRelin(ct, ct)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Conjugate on degree-2", func() { ev.Conjugate(d2) })
	mustPanic("MulNoRelin with degree-2 operand", func() { ev.MulNoRelin(d2, ct) })
	evNoKey := NewEvaluator(tc.params, nil, nil)
	mustPanic("Relinearize without rlk", func() { evNoKey.Relinearize(d2) })
}
