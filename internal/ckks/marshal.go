package ckks

// Binary serialization for every object that crosses the client/server
// boundary in the CHET deployment model (Figure 3 of the paper): the client
// ships an encrypted image plus public evaluation keys; the server returns
// an encrypted prediction. All formats are little-endian with explicit
// length prefixes and a magic/version header so corruption is detected
// early.

import (
	"encoding/binary"
	"fmt"
	"math"

	"chet/internal/ring"
)

const (
	magicCiphertext uint32 = 0xC4E70001
	magicPublicKey  uint32 = 0xC4E70002
	magicSwitchKey  uint32 = 0xC4E70003
	magicRotKeySet  uint32 = 0xC4E70004
	magicSecretKey  uint32 = 0xC4E70005
	magicPlaintext  uint32 = 0xC4E70006
)

// writer is a tiny append-only buffer.
type writer struct{ buf []byte }

func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}

func (w *writer) poly(p *ring.Poly) {
	w.u32(uint32(len(p.Coeffs)))
	for _, row := range p.Coeffs {
		w.u32(uint32(len(row)))
		for _, c := range row {
			w.u64(c)
		}
	}
}

// reader is a bounds-checked cursor.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("ckks: unmarshal: %s at offset %d", msg, r.pos)
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.buf) {
		r.fail("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

const maxPolyRows = 64

func (r *reader) poly() *ring.Poly {
	rows := int(r.u32())
	if r.err != nil {
		return nil
	}
	if rows <= 0 || rows > maxPolyRows {
		r.fail(fmt.Sprintf("implausible row count %d", rows))
		return nil
	}
	p := &ring.Poly{Coeffs: make([][]uint64, rows)}
	for i := 0; i < rows; i++ {
		n := int(r.u32())
		if r.err != nil {
			return nil
		}
		if n <= 0 || n > 1<<17 {
			r.fail(fmt.Sprintf("implausible row length %d", n))
			return nil
		}
		row := make([]uint64, n)
		for j := range row {
			row[j] = r.u64()
		}
		p.Coeffs[i] = row
	}
	return p
}

func (r *reader) expectMagic(want uint32, what string) {
	if got := r.u32(); r.err == nil && got != want {
		r.fail("bad magic for " + what)
	}
}

func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("ckks: unmarshal: %d trailing bytes", len(r.buf)-r.pos)
	}
	return nil
}

// MarshalBinary encodes the ciphertext.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	w := &writer{}
	w.u32(magicCiphertext)
	w.u32(uint32(ct.Lvl))
	w.f64(ct.Scale)
	w.poly(ct.C0)
	w.poly(ct.C1)
	return w.buf, nil
}

// UnmarshalBinary decodes a ciphertext produced by MarshalBinary.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	r := &reader{buf: data}
	r.expectMagic(magicCiphertext, "ciphertext")
	lvl := int(r.u32())
	scale := r.f64()
	c0 := r.poly()
	c1 := r.poly()
	if err := r.finish(); err != nil {
		return err
	}
	if c0.Level() != lvl || c1.Level() != lvl {
		return fmt.Errorf("ckks: ciphertext level %d does not match polynomials (%d, %d)",
			lvl, c0.Level(), c1.Level())
	}
	ct.Lvl, ct.Scale, ct.C0, ct.C1 = lvl, scale, c0, c1
	return nil
}

// MarshalBinary encodes the plaintext.
func (pt *Plaintext) MarshalBinary() ([]byte, error) {
	w := &writer{}
	w.u32(magicPlaintext)
	w.u32(uint32(pt.Lvl))
	w.f64(pt.Scale)
	w.poly(pt.Value)
	return w.buf, nil
}

// UnmarshalBinary decodes a plaintext produced by MarshalBinary.
func (pt *Plaintext) UnmarshalBinary(data []byte) error {
	r := &reader{buf: data}
	r.expectMagic(magicPlaintext, "plaintext")
	lvl := int(r.u32())
	scale := r.f64()
	v := r.poly()
	if err := r.finish(); err != nil {
		return err
	}
	pt.Lvl, pt.Scale, pt.Value = lvl, scale, v
	return nil
}

// MarshalBinary encodes the secret key. Handle with care: this is the
// client's private material.
func (sk *SecretKey) MarshalBinary() ([]byte, error) {
	w := &writer{}
	w.u32(magicSecretKey)
	w.poly(sk.Value)
	return w.buf, nil
}

// UnmarshalBinary decodes a secret key.
func (sk *SecretKey) UnmarshalBinary(data []byte) error {
	r := &reader{buf: data}
	r.expectMagic(magicSecretKey, "secret key")
	v := r.poly()
	if err := r.finish(); err != nil {
		return err
	}
	sk.Value = v
	return nil
}

// MarshalBinary encodes the public encryption key.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	w := &writer{}
	w.u32(magicPublicKey)
	w.poly(pk.B)
	w.poly(pk.A)
	return w.buf, nil
}

// UnmarshalBinary decodes a public key.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	r := &reader{buf: data}
	r.expectMagic(magicPublicKey, "public key")
	b := r.poly()
	a := r.poly()
	if err := r.finish(); err != nil {
		return err
	}
	pk.B, pk.A = b, a
	return nil
}

func (w *writer) switchingKey(swk *SwitchingKey) {
	w.u32(uint32(len(swk.B)))
	for i := range swk.B {
		w.poly(swk.B[i])
		w.poly(swk.A[i])
	}
}

func (r *reader) switchingKey() *SwitchingKey {
	digits := int(r.u32())
	if r.err != nil {
		return nil
	}
	if digits <= 0 || digits > maxPolyRows {
		r.fail(fmt.Sprintf("implausible digit count %d", digits))
		return nil
	}
	swk := &SwitchingKey{B: make([]*ring.Poly, digits), A: make([]*ring.Poly, digits)}
	for i := 0; i < digits; i++ {
		swk.B[i] = r.poly()
		swk.A[i] = r.poly()
	}
	return swk
}

// MarshalBinary encodes the relinearization key.
func (rlk *RelinearizationKey) MarshalBinary() ([]byte, error) {
	w := &writer{}
	w.u32(magicSwitchKey)
	w.switchingKey(rlk.Key)
	return w.buf, nil
}

// UnmarshalBinary decodes a relinearization key.
func (rlk *RelinearizationKey) UnmarshalBinary(data []byte) error {
	r := &reader{buf: data}
	r.expectMagic(magicSwitchKey, "relinearization key")
	k := r.switchingKey()
	if err := r.finish(); err != nil {
		return err
	}
	rlk.Key = k
	return nil
}

// MarshalBinary encodes the rotation key set.
func (rtks *RotationKeySet) MarshalBinary() ([]byte, error) {
	w := &writer{}
	w.u32(magicRotKeySet)
	w.u32(uint32(len(rtks.Keys)))
	// Deterministic order for reproducible wire bytes.
	gals := rtks.GaloisElements()
	for i := 1; i < len(gals); i++ {
		for j := i; j > 0 && gals[j] < gals[j-1]; j-- {
			gals[j], gals[j-1] = gals[j-1], gals[j]
		}
	}
	for _, g := range gals {
		w.u64(g)
		w.switchingKey(rtks.Keys[g])
	}
	return w.buf, nil
}

// UnmarshalBinary decodes a rotation key set.
func (rtks *RotationKeySet) UnmarshalBinary(data []byte) error {
	r := &reader{buf: data}
	r.expectMagic(magicRotKeySet, "rotation key set")
	n := int(r.u32())
	if r.err == nil && (n < 0 || n > 1<<16) {
		r.fail(fmt.Sprintf("implausible key count %d", n))
	}
	keys := make(map[uint64]*SwitchingKey, n)
	for i := 0; i < n && r.err == nil; i++ {
		g := r.u64()
		keys[g] = r.switchingKey()
	}
	if err := r.finish(); err != nil {
		return err
	}
	rtks.Keys = keys
	return nil
}
