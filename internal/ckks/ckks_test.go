package ckks

import (
	"math"
	"math/rand"
	"testing"

	"chet/internal/ring"
)

// testContext bundles everything needed to exercise the scheme.
type testContext struct {
	params *Parameters
	enc    *Encoder
	kgen   *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	rlk    *RelinearizationKey
	encr   *Encryptor
	decr   *Decryptor
}

func newTestContext(t testing.TB) *testContext {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     50,
		LogScale: 40,
	})
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	prng := ring.NewTestPRNG(0xC0FFEE)
	kgen := NewKeyGenerator(params, prng)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	return &testContext{
		params: params,
		enc:    NewEncoder(params),
		kgen:   kgen,
		sk:     sk,
		pk:     pk,
		rlk:    rlk,
		encr:   NewEncryptor(params, pk, prng),
		decr:   NewDecryptor(params, sk),
	}
}

func randomVector(n int, bound float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * bound
	}
	return v
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestEncoderRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	slots := tc.params.Slots()
	values := randomVector(slots, 10, 1)
	pt := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	got := tc.enc.Decode(pt)
	if d := maxAbsDiff(values, got); d > 1e-7 {
		t.Fatalf("encoder roundtrip error %g too large", d)
	}
}

func TestEncoderPartialVector(t *testing.T) {
	tc := newTestContext(t)
	values := []float64{1.5, -2.25, 3.75}
	pt := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	got := tc.enc.Decode(pt)
	for i, want := range values {
		if math.Abs(got[i]-want) > 1e-7 {
			t.Fatalf("slot %d: got %g want %g", i, got[i], want)
		}
	}
	for i := len(values); i < 8; i++ {
		if math.Abs(got[i]) > 1e-7 {
			t.Fatalf("padding slot %d not ~0: %g", i, got[i])
		}
	}
}

func TestEncryptDecrypt(t *testing.T) {
	tc := newTestContext(t)
	values := randomVector(tc.params.Slots(), 10, 2)
	pt := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	ct := tc.encr.Encrypt(pt)
	got := tc.enc.Decode(tc.decr.Decrypt(ct))
	if d := maxAbsDiff(values, got); d > 1e-5 {
		t.Fatalf("encrypt/decrypt error %g too large", d)
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	slots := tc.params.Slots()
	a := randomVector(slots, 10, 3)
	b := randomVector(slots, 10, 4)
	scale := tc.params.DefaultScale()
	level := tc.params.MaxLevel()

	cta := tc.encr.Encrypt(tc.enc.Encode(a, scale, level))
	ctb := tc.encr.Encrypt(tc.enc.Encode(b, scale, level))

	sum := tc.enc.Decode(tc.decr.Decrypt(ev.Add(cta, ctb)))
	diff := tc.enc.Decode(tc.decr.Decrypt(ev.Sub(cta, ctb)))
	for i := 0; i < slots; i++ {
		if math.Abs(sum[i]-(a[i]+b[i])) > 1e-4 {
			t.Fatalf("slot %d: add error", i)
		}
		if math.Abs(diff[i]-(a[i]-b[i])) > 1e-4 {
			t.Fatalf("slot %d: sub error", i)
		}
	}
}

func TestAddPlainAndScalar(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	slots := tc.params.Slots()
	a := randomVector(slots, 10, 5)
	b := randomVector(slots, 10, 6)
	scale := tc.params.DefaultScale()
	level := tc.params.MaxLevel()

	ct := tc.encr.Encrypt(tc.enc.Encode(a, scale, level))
	pt := tc.enc.Encode(b, scale, level)

	got := tc.enc.Decode(tc.decr.Decrypt(ev.AddPlain(ct, pt)))
	for i := 0; i < slots; i++ {
		if math.Abs(got[i]-(a[i]+b[i])) > 1e-4 {
			t.Fatalf("AddPlain slot %d: got %g want %g", i, got[i], a[i]+b[i])
		}
	}

	got = tc.enc.Decode(tc.decr.Decrypt(ev.AddScalar(ct, 2.5)))
	for i := 0; i < slots; i++ {
		if math.Abs(got[i]-(a[i]+2.5)) > 1e-4 {
			t.Fatalf("AddScalar slot %d: got %g want %g", i, got[i], a[i]+2.5)
		}
	}

	got = tc.enc.Decode(tc.decr.Decrypt(ev.SubPlain(ct, pt)))
	for i := 0; i < slots; i++ {
		if math.Abs(got[i]-(a[i]-b[i])) > 1e-4 {
			t.Fatalf("SubPlain slot %d", i)
		}
	}
}

func TestMulPlainWithRescale(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	slots := tc.params.Slots()
	a := randomVector(slots, 4, 7)
	w := randomVector(slots, 4, 8)
	scale := tc.params.DefaultScale()
	level := tc.params.MaxLevel()

	ct := tc.encr.Encrypt(tc.enc.Encode(a, scale, level))
	pt := tc.enc.Encode(w, scale, level)

	prod := ev.MulPlain(ct, pt)
	if !sameScale(prod.Scale, scale*scale) {
		t.Fatalf("product scale %g, want %g", prod.Scale, scale*scale)
	}
	ev.Rescale(prod)
	if prod.Lvl != level-1 {
		t.Fatalf("level after rescale = %d, want %d", prod.Lvl, level-1)
	}

	got := tc.enc.Decode(tc.decr.Decrypt(prod))
	for i := 0; i < slots; i++ {
		if math.Abs(got[i]-a[i]*w[i]) > 1e-3 {
			t.Fatalf("MulPlain slot %d: got %g want %g", i, got[i], a[i]*w[i])
		}
	}
}

func TestMulScalar(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	slots := tc.params.Slots()
	a := randomVector(slots, 4, 9)
	scale := tc.params.DefaultScale()
	level := tc.params.MaxLevel()

	ct := tc.encr.Encrypt(tc.enc.Encode(a, scale, level))
	prod := ev.MulScalar(ct, -1.75, scale)
	ev.Rescale(prod)
	got := tc.enc.Decode(tc.decr.Decrypt(prod))
	for i := 0; i < slots; i++ {
		if math.Abs(got[i]-a[i]*-1.75) > 1e-3 {
			t.Fatalf("MulScalar slot %d: got %g want %g", i, got[i], a[i]*-1.75)
		}
	}
}

func TestMulCiphertext(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	slots := tc.params.Slots()
	a := randomVector(slots, 4, 10)
	b := randomVector(slots, 4, 11)
	scale := tc.params.DefaultScale()
	level := tc.params.MaxLevel()

	cta := tc.encr.Encrypt(tc.enc.Encode(a, scale, level))
	ctb := tc.encr.Encrypt(tc.enc.Encode(b, scale, level))

	prod := ev.Mul(cta, ctb)
	ev.Rescale(prod)
	got := tc.enc.Decode(tc.decr.Decrypt(prod))
	for i := 0; i < slots; i++ {
		if math.Abs(got[i]-a[i]*b[i]) > 1e-2 {
			t.Fatalf("Mul slot %d: got %g want %g (err %g)", i, got[i], a[i]*b[i],
				math.Abs(got[i]-a[i]*b[i]))
		}
	}
}

func TestMulDepthTwo(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	slots := tc.params.Slots()
	a := randomVector(slots, 2, 12)
	scale := tc.params.DefaultScale()
	level := tc.params.MaxLevel()

	ct := tc.encr.Encrypt(tc.enc.Encode(a, scale, level))
	sq := ev.Mul(ct, ct)
	ev.Rescale(sq)
	quad := ev.Mul(sq, sq)
	ev.Rescale(quad)

	got := tc.enc.Decode(tc.decr.Decrypt(quad))
	for i := 0; i < slots; i++ {
		want := a[i] * a[i] * a[i] * a[i]
		if math.Abs(got[i]-want) > 5e-2 {
			t.Fatalf("x^4 slot %d: got %g want %g", i, got[i], want)
		}
	}
}

func TestRotation(t *testing.T) {
	tc := newTestContext(t)
	slots := tc.params.Slots()
	rotations := []int{1, 2, 7, slots / 2, -3}
	rtks := tc.kgen.GenRotationKeys(tc.sk, rotations, false)
	ev := NewEvaluator(tc.params, nil, rtks)

	a := randomVector(slots, 8, 13)
	scale := tc.params.DefaultScale()
	level := tc.params.MaxLevel()
	ct := tc.encr.Encrypt(tc.enc.Encode(a, scale, level))

	for _, k := range rotations {
		rot := ev.RotateLeft(ct, k)
		got := tc.enc.Decode(tc.decr.Decrypt(rot))
		for i := 0; i < slots; i++ {
			want := a[((i+k)%slots+slots)%slots]
			if math.Abs(got[i]-want) > 1e-3 {
				t.Fatalf("rotate %d slot %d: got %g want %g", k, i, got[i], want)
			}
		}
	}
}

func TestRotationZeroIsIdentity(t *testing.T) {
	tc := newTestContext(t)
	rtks := tc.kgen.GenRotationKeys(tc.sk, nil, false)
	ev := NewEvaluator(tc.params, nil, rtks)
	a := randomVector(tc.params.Slots(), 8, 14)
	ct := tc.encr.Encrypt(tc.enc.Encode(a, tc.params.DefaultScale(), tc.params.MaxLevel()))
	rot := ev.RotateLeft(ct, 0)
	got := tc.enc.Decode(tc.decr.Decrypt(rot))
	if d := maxAbsDiff(a, got); d > 1e-4 {
		t.Fatalf("rotation by 0 changed the message: %g", d)
	}
}

func TestConjugate(t *testing.T) {
	tc := newTestContext(t)
	rtks := tc.kgen.GenRotationKeys(tc.sk, nil, true)
	ev := NewEvaluator(tc.params, nil, rtks)
	slots := tc.params.Slots()

	vals := make([]complex128, slots)
	for i := range vals {
		vals[i] = complex(float64(i%7), float64(i%5)-2)
	}
	pt := tc.enc.EncodeComplex(vals, tc.params.DefaultScale(), tc.params.MaxLevel())
	ct := tc.encr.Encrypt(pt)
	conj := ev.Conjugate(ct)
	got := tc.enc.DecodeComplex(tc.decr.Decrypt(conj))
	for i := range vals {
		want := complex(real(vals[i]), -imag(vals[i]))
		if math.Abs(real(got[i])-real(want)) > 1e-3 || math.Abs(imag(got[i])-imag(want)) > 1e-3 {
			t.Fatalf("conjugate slot %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestMissingRotationKeyError(t *testing.T) {
	tc := newTestContext(t)
	rtks := tc.kgen.GenRotationKeys(tc.sk, []int{1}, false)
	ev := NewEvaluator(tc.params, nil, rtks)
	ct := tc.encr.Encrypt(tc.enc.Encode([]float64{1}, tc.params.DefaultScale(), tc.params.MaxLevel()))

	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing rotation key")
		}
	}()
	ev.RotateLeft(ct, 3)
}

func TestLevelAlignment(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	slots := tc.params.Slots()
	a := randomVector(slots, 4, 15)
	b := randomVector(slots, 4, 16)
	scale := tc.params.DefaultScale()

	cta := tc.encr.Encrypt(tc.enc.Encode(a, scale, tc.params.MaxLevel()))
	ctb := tc.encr.Encrypt(tc.enc.Encode(b, scale, tc.params.MaxLevel()))
	ev.DropToLevel(ctb, tc.params.MaxLevel()-2)

	sum := ev.Add(cta, ctb)
	if sum.Lvl != tc.params.MaxLevel()-2 {
		t.Fatalf("sum level = %d, want %d", sum.Lvl, tc.params.MaxLevel()-2)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(sum))
	for i := 0; i < slots; i++ {
		if math.Abs(got[i]-(a[i]+b[i])) > 1e-4 {
			t.Fatalf("cross-level add slot %d", i)
		}
	}
	// Original operand is untouched.
	if cta.Lvl != tc.params.MaxLevel() {
		t.Fatal("Add mutated its input level")
	}
}

func TestScaleMismatchPanics(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	scale := tc.params.DefaultScale()
	cta := tc.encr.Encrypt(tc.enc.Encode([]float64{1}, scale, tc.params.MaxLevel()))
	ctb := tc.encr.Encrypt(tc.enc.Encode([]float64{1}, scale*2, tc.params.MaxLevel()))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on scale mismatch")
		}
	}()
	ev.Add(cta, ctb)
}

func TestRescaleScaleTracking(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	scale := tc.params.DefaultScale()
	level := tc.params.MaxLevel()
	ct := tc.encr.Encrypt(tc.enc.Encode([]float64{3}, scale, level))

	prod := ev.MulScalar(ct, 2, scale)
	wantScale := scale * scale / float64(tc.params.Qi(level))
	ev.Rescale(prod)
	if !sameScale(prod.Scale, wantScale) {
		t.Fatalf("scale after rescale = %g, want %g", prod.Scale, wantScale)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(prod))
	if math.Abs(got[0]-6) > 1e-3 {
		t.Fatalf("got %g want 6", got[0])
	}
}

func TestEncodeHighScaleBigPath(t *testing.T) {
	tc := newTestContext(t)
	// A scale of 2^80 forces the big.Int encoding path.
	scale := math.Exp2(80)
	values := []float64{0.5, -0.25}
	pt := tc.enc.Encode(values, scale, tc.params.MaxLevel())
	got := tc.enc.Decode(pt)
	for i, want := range values {
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("big-path slot %d: got %g want %g", i, got[i], want)
		}
	}
}
