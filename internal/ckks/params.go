// Package ckks implements the RNS variant of the CKKS approximate
// homomorphic encryption scheme (Cheon-Kim-Kim-Song, with the full-RNS
// optimizations of Cheon-Han-Kim-Kim-Song), the scheme implemented by SEAL
// v3.1 and targeted by the CHET compiler. It is built from scratch on the
// negacyclic NTT rings of internal/ring and supports encoding into N/2
// complex slots, encryption, addition, multiplication with relinearization,
// plaintext and scalar multiplication, rescaling by chain moduli, slot
// rotation, and conjugation.
package ckks

import (
	"fmt"
	"math"

	"chet/internal/ring"
)

// Parameters fully determines an RNS-CKKS instantiation.
type Parameters struct {
	logN     int
	logSlots int
	qChain   []uint64 // ciphertext modulus chain q_0 .. q_L
	pSpecial uint64   // special prime for key switching
	scale    float64  // default encoding scale
	ring     *ring.Ring

	// Key-switch invariants hoisted out of the per-operation hot path:
	// P^{-1} mod q_j (plain and Shoup form) per chain prime, and the
	// extended-basis row sets {0..level, pIndex} per level.
	pInvModQ      []uint64
	pInvModQShoup []uint64
	ksRowsByLevel [][]int

	// Rescale invariants: (q_level mod q_j)^{-1} mod q_j for j < level,
	// plain and Shoup form, so dividing by a chain prime never computes a
	// modular inverse on the hot path.
	rescaleQInv      [][]uint64
	rescaleQInvShoup [][]uint64
}

// ParametersLiteral is the user-facing description of a parameter set.
type ParametersLiteral struct {
	LogN          int   // ring degree is 2^LogN
	LogQ          []int // bit sizes of the chain primes, q_0 first
	LogP          int   // bit size of the key-switching special prime
	LogScale      int   // default encoding scale is 2^LogScale
	LogSlots      int   // optional; defaults to LogN-1 (full packing)
	Deterministic bool  // reserved for test fixtures
}

// NewParameters generates concrete NTT-friendly primes realizing the literal
// and returns the parameter set.
func NewParameters(lit ParametersLiteral) (*Parameters, error) {
	if lit.LogN < 4 || lit.LogN > 16 {
		return nil, fmt.Errorf("ckks: LogN %d out of supported range [4, 16]", lit.LogN)
	}
	if len(lit.LogQ) == 0 {
		return nil, fmt.Errorf("ckks: empty modulus chain")
	}
	logSlots := lit.LogSlots
	if logSlots == 0 {
		logSlots = lit.LogN - 1
	}
	if logSlots >= lit.LogN {
		return nil, fmt.Errorf("ckks: LogSlots %d must be < LogN %d", logSlots, lit.LogN)
	}

	// Group requested bit sizes so equal sizes share one downward search.
	want := map[int]int{}
	for _, b := range lit.LogQ {
		if b < 20 || b > 60 {
			return nil, fmt.Errorf("ckks: chain prime bit size %d out of range [20, 60]", b)
		}
		want[b]++
	}
	if lit.LogP < 20 || lit.LogP > 60 {
		return nil, fmt.Errorf("ckks: special prime bit size %d out of range [20, 60]", lit.LogP)
	}
	want[lit.LogP]++

	found := map[int][]uint64{}
	for bits, n := range want {
		primes, err := ring.GenerateNTTPrimes(bits, lit.LogN, n)
		if err != nil {
			return nil, err
		}
		found[bits] = primes
	}

	next := map[int]int{}
	take := func(bits int) uint64 {
		p := found[bits][next[bits]]
		next[bits]++
		return p
	}

	qChain := make([]uint64, len(lit.LogQ))
	for i, b := range lit.LogQ {
		qChain[i] = take(b)
	}
	pSpecial := take(lit.LogP)

	allPrimes := append(append([]uint64{}, qChain...), pSpecial)
	rg, err := ring.NewRing(lit.LogN, allPrimes)
	if err != nil {
		return nil, err
	}

	p := &Parameters{
		logN:     lit.LogN,
		logSlots: logSlots,
		qChain:   qChain,
		pSpecial: pSpecial,
		scale:    math.Exp2(float64(lit.LogScale)),
		ring:     rg,
	}
	p.precomputeKeySwitch()
	return p, nil
}

// precomputeKeySwitch derives the per-chain-prime constants every key
// switch needs, so the evaluator never recomputes a modular inverse or
// rebuilds the extended-basis row list inside the hot path.
func (p *Parameters) precomputeKeySwitch() {
	pIdx := p.pIndex()
	p.pInvModQ = make([]uint64, len(p.qChain))
	p.pInvModQShoup = make([]uint64, len(p.qChain))
	for j, qj := range p.qChain {
		inv := ring.InvMod(p.pSpecial%qj, qj)
		p.pInvModQ[j] = inv
		p.pInvModQShoup[j] = ring.MForm(inv, qj)
	}
	p.ksRowsByLevel = make([][]int, len(p.qChain))
	for level := range p.ksRowsByLevel {
		rows := make([]int, 0, level+2)
		for j := 0; j <= level; j++ {
			rows = append(rows, j)
		}
		p.ksRowsByLevel[level] = append(rows, pIdx)
	}
	p.rescaleQInv = make([][]uint64, len(p.qChain))
	p.rescaleQInvShoup = make([][]uint64, len(p.qChain))
	for level := 1; level < len(p.qChain); level++ {
		qTop := p.qChain[level]
		p.rescaleQInv[level] = make([]uint64, level)
		p.rescaleQInvShoup[level] = make([]uint64, level)
		for j := 0; j < level; j++ {
			qj := p.qChain[j]
			inv := ring.InvMod(qTop%qj, qj)
			p.rescaleQInv[level][j] = inv
			p.rescaleQInvShoup[level][j] = ring.MForm(inv, qj)
		}
	}
}

// ksRows returns the extended-basis row indices {0..level, pIndex} a key
// switch at the given level touches. The slice is shared; do not modify.
func (p *Parameters) ksRows(level int) []int { return p.ksRowsByLevel[level] }

// LogN returns log2 of the ring degree.
func (p *Parameters) LogN() int { return p.logN }

// N returns the ring degree.
func (p *Parameters) N() int { return 1 << uint(p.logN) }

// Slots returns the number of plaintext slots (2^LogSlots).
func (p *Parameters) Slots() int { return 1 << uint(p.logSlots) }

// LogSlots returns log2 of the slot count.
func (p *Parameters) LogSlots() int { return p.logSlots }

// MaxLevel returns the top ciphertext level L (fresh ciphertexts start here).
func (p *Parameters) MaxLevel() int { return len(p.qChain) - 1 }

// QChain returns the ciphertext modulus chain (a copy).
func (p *Parameters) QChain() []uint64 { return append([]uint64(nil), p.qChain...) }

// Qi returns the i-th chain prime.
func (p *Parameters) Qi(i int) uint64 { return p.qChain[i] }

// PSpecial returns the key-switching special prime.
func (p *Parameters) PSpecial() uint64 { return p.pSpecial }

// DefaultScale returns the default encoding scale.
func (p *Parameters) DefaultScale() float64 { return p.scale }

// Ring returns the underlying RNS ring, whose prime order is the chain
// primes followed by the special prime.
func (p *Parameters) Ring() *ring.Ring { return p.ring }

// pIndex is the row index of the special prime within the ring.
func (p *Parameters) pIndex() int { return len(p.qChain) }

// LogQTotal returns the total bit length of the ciphertext modulus
// sum(log2 q_i), the quantity constrained by the security table.
func (p *Parameters) LogQTotal() float64 {
	total := 0.0
	for _, q := range p.qChain {
		total += math.Log2(float64(q))
	}
	return total
}
