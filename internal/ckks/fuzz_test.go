package ckks

import (
	"testing"

	"chet/internal/ring"
)

// fuzzKeys generates one small deterministic key set for seeding.
func fuzzKeys(f *testing.F) (*Parameters, *KeyGenerator, *SecretKey) {
	f.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN: 4, LogQ: []int{30, 25}, LogP: 30, LogScale: 25,
	})
	if err != nil {
		f.Fatal(err)
	}
	kgen := NewKeyGenerator(params, ring.NewTestPRNG(11))
	sk := kgen.GenSecretKey()
	return params, kgen, sk
}

// FuzzUnmarshalCiphertext proves Ciphertext.UnmarshalBinary is total:
// corrupted or truncated bytes produce an error, never a panic, and any
// accepted input survives a marshal/unmarshal round trip.
func FuzzUnmarshalCiphertext(f *testing.F) {
	params, kgen, sk := fuzzKeys(f)
	enc := NewEncryptor(params, kgen.GenPublicKey(sk), ring.NewTestPRNG(13))
	encoder := NewEncoder(params)
	ct := enc.Encrypt(encoder.Encode([]float64{1, -2, 3.5}, params.DefaultScale(), params.MaxLevel()))
	seed, err := ct.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		var c Ciphertext
		if err := c.UnmarshalBinary(data); err != nil {
			return
		}
		reenc, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted ciphertext does not re-marshal: %v", err)
		}
		var c2 Ciphertext
		if err := c2.UnmarshalBinary(reenc); err != nil {
			t.Fatalf("re-marshaled ciphertext rejected: %v", err)
		}
		if c2.Lvl != c.Lvl || c2.Scale != c.Scale {
			t.Fatal("level/scale not stable across round trip")
		}
	})
}

// FuzzUnmarshalRotationKeySet proves RotationKeySet.UnmarshalBinary is
// total over adversarial bytes.
func FuzzUnmarshalRotationKeySet(f *testing.F) {
	_, kgen, sk := fuzzKeys(f)
	rtks := kgen.GenRotationKeys(sk, []int{1, 3}, true)
	seed, err := rtks.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)-7])

	f.Fuzz(func(t *testing.T, data []byte) {
		var r RotationKeySet
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		for g, k := range r.Keys {
			if k == nil {
				t.Fatalf("accepted key set holds nil switching key for Galois %d", g)
			}
		}
		reenc, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted key set does not re-marshal: %v", err)
		}
		var r2 RotationKeySet
		if err := r2.UnmarshalBinary(reenc); err != nil {
			t.Fatalf("re-marshaled key set rejected: %v", err)
		}
		if len(r2.Keys) != len(r.Keys) {
			t.Fatal("key count not stable across round trip")
		}
	})
}

// FuzzUnmarshalPublicKey covers the remaining session-open object.
func FuzzUnmarshalPublicKey(f *testing.F) {
	_, kgen, sk := fuzzKeys(f)
	pk := kgen.GenPublicKey(sk)
	seed, err := pk.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p PublicKey
		if err := p.UnmarshalBinary(data); err != nil {
			return
		}
		if p.A == nil || p.B == nil {
			t.Fatal("accepted public key with nil polynomial")
		}
	})
}
