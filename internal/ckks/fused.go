package ckks

import (
	"chet/internal/ring"
)

// Fused rescale-into-key-switch.
//
// The sequence Rescale-then-Relinearize — the tail of every ciphertext
// multiplication under a scale-management policy — performs three full
// passes over the ciphertext limbs when run as separate operations: the
// rescale pass (one forward NTT per surviving row, per component), the
// digit decomposition of the rescaled C2, and the mod-P correction of the
// key-switch output (another forward NTT per row, per component). Fusing
// the rescale into the key switch removes one of those passes entirely and
// shrinks another:
//
//  1. C2's division by the top prime happens in the coefficient domain,
//     inside the decomposition, between the inverse NTT the decomposition
//     performs anyway and the forward NTTs of the digit spread. The NTT is
//     linear, so dividing before the spread is bit-identical to rescaling
//     in the NTT domain first — and the 2·(level) forward transforms the
//     standalone rescale of C2 would have burned never run.
//  2. The decomposition then happens at level-1: one digit fewer and one
//     basis row fewer per digit than relinearize-then-rescale order, which
//     is where the asymptotic win comes from (ℓ² vs (ℓ+1)² transforms).
//  3. C0/C1's rescale correction and the key-switch mod-P correction merge
//     into a single forward NTT per output row: by linearity,
//
//	out_j = C_j·qInv + acc_j·Pinv − NTT((tQ_j·qInv + tP_j·Pinv) mod q_j)
//
//     where tQ = centered(InvNTT(C_top)) and tP = centered(InvNTT(acc_P)).
//     The unfused order computes NTT(tQ_j) and NTT(tP_j) separately.
//
// Every intermediate is a canonical representative mod q_j and every
// transform is exact, so the fusion is bit-identical to the unfused
// sequence — the parity tests in fused_test.go pin this.

// RelinearizeRescale returns ct relinearized to degree 1 and rescaled by
// the top chain prime, in one fused pass over the limbs. It is
// bit-identical to
//
//	cc := copy of ct; ev.Rescale(cc); return ev.Relinearize(cc)
//
// but cheaper: the decomposition runs at the post-rescale level and the
// rescale corrections ride along with transforms the key switch performs
// anyway. ct is not mutated. Degree-1 inputs skip the key switch and are
// only rescaled. Panics at level 0.
func (ev *Evaluator) RelinearizeRescale(ct *Ciphertext) *Ciphertext {
	level := ct.Lvl
	if level == 0 {
		panic("ckks: cannot rescale below level 0")
	}
	if ct.C2 == nil {
		out := ev.copyCt(ct)
		ev.Rescale(out)
		return out
	}
	if ev.rlk == nil {
		panic("ckks: evaluator has no relinearization key")
	}

	params := ev.params
	r := params.Ring()
	n := r.N
	qTop := r.Moduli[level].Q
	halfQ := qTop >> 1
	newLevel := level - 1
	rows := params.ksRows(newLevel)
	qInvRow := params.rescaleQInv[level]
	qInvSRow := params.rescaleQInvShoup[level]

	// C2 to the coefficient domain, then divide by qTop there (step 1).
	coef := ev.getAcc()
	ev.forEach(level+1, func(i int) {
		copy(coef.Coeffs[i], ct.C2.Coeffs[i])
		r.InvNTTSingle(i, coef.Coeffs[i])
	})
	topC := coef.Coeffs[level]
	ev.forEach(level, func(j int) {
		qj := r.Moduli[j].Q
		qInv, qInvS := qInvRow[j], qInvSRow[j]
		row := coef.Coeffs[j]
		for k := 0; k < n; k++ {
			v := topC[k]
			var t uint64
			if v > halfQ {
				t = (qj - (qTop-v)%qj) % qj
			} else {
				t = v % qj
			}
			row[k] = ring.MulModShoup(ring.SubMod(row[k], t, qj), qInv, qInvS, qj)
		}
	})

	// Digit decomposition of the rescaled C2 at newLevel (step 2).
	dec := &HoistedDecomposition{level: newLevel, ev: ev, digits: make([]*ring.Poly, newLevel+1)}
	ev.forEach(newLevel+1, func(i int) {
		d := ev.getAcc()
		ev.spreadDigit(coef.Coeffs[i], i, rows, d)
		dec.digits[i] = d
	})
	ev.putAcc(coef)

	// Inner product against the relinearization key, stopping before the
	// division by P — the special-prime rows feed the merged output pass.
	acc0, acc1 := ev.ksInnerProduct(dec, nil, ev.rlk.Key)
	dec.Release()

	// Merged rescale + mod-P output pass (step 3).
	out := &Ciphertext{Scale: ct.Scale / float64(qTop), Lvl: newLevel}
	out.C0 = ev.fusedOutput(ct.C0, acc0, level)
	out.C1 = ev.fusedOutput(ct.C1, acc1, level)
	ev.putAcc(acc0)
	ev.putAcc(acc1)
	return out
}

// fusedOutput computes rescale(c, qTop) + acc/P over rows 0..level-1 with a
// single forward transform per row: both corrections are combined in the
// coefficient domain and transformed together (NTT linearity). acc is a
// key-switch accumulator whose special-prime row is consumed (and clobbered)
// here; c is read-only.
func (ev *Evaluator) fusedOutput(c, acc *ring.Poly, level int) *ring.Poly {
	params := ev.params
	r := params.Ring()
	n := r.N
	newLevel := level - 1
	pIdx := params.pIndex()
	p := r.Moduli[pIdx].Q
	halfP := p >> 1
	qTop := r.Moduli[level].Q
	halfQ := qTop >> 1
	qInvRow := params.rescaleQInv[level]
	qInvSRow := params.rescaleQInvShoup[level]

	// Coefficient-domain correction sources: the key-switch special-prime
	// row (in place — acc is scratch) and the component's top row (copied —
	// c belongs to the caller).
	tP := acc.Coeffs[pIdx]
	r.InvNTTSingle(pIdx, tP)
	tQ := ev.getRow()
	defer ev.putRow(tQ)
	copy(tQ, c.Coeffs[level])
	r.InvNTTSingle(level, tQ)

	u := ev.getRow()
	defer ev.putRow(u)
	out := r.GetPoly(newLevel)
	for j := 0; j <= newLevel; j++ {
		qj := r.Moduli[j].Q
		qInv, qInvS := qInvRow[j], qInvSRow[j]
		pInv, pInvS := params.pInvModQ[j], params.pInvModQShoup[j]
		for k := 0; k < n; k++ {
			vq := tQ[k]
			var a uint64
			if vq > halfQ {
				a = (qj - (qTop-vq)%qj) % qj
			} else {
				a = vq % qj
			}
			vp := tP[k]
			var b uint64
			if vp > halfP {
				b = (qj - (p-vp)%qj) % qj
			} else {
				b = vp % qj
			}
			u[k] = ring.AddMod(
				ring.MulModShoup(a, qInv, qInvS, qj),
				ring.MulModShoup(b, pInv, pInvS, qj), qj)
		}
		r.NTTSingle(j, u)
		cj, aj, oj := c.Coeffs[j], acc.Coeffs[j], out.Coeffs[j]
		for k := 0; k < n; k++ {
			s := ring.AddMod(
				ring.MulModShoup(cj[k], qInv, qInvS, qj),
				ring.MulModShoup(aj[k], pInv, pInvS, qj), qj)
			oj[k] = ring.SubMod(s, u[k], qj)
		}
	}
	return out
}
