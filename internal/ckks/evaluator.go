package ckks

import (
	"fmt"
	"math"
	"math/big"
	"sync"

	"chet/internal/ring"
)

// Evaluator executes homomorphic operations. It is safe for concurrent use
// by multiple goroutines: all operations are functional (inputs are never
// mutated, except the documented in-place Rescale/DropToLevel family, which
// callers must not race on a shared ciphertext), keys are read-only after
// construction, and per-operation scratch rows are drawn from an internal
// sync.Pool. For workloads that prefer fully isolated scratch state (one
// evaluator per worker goroutine), ShallowCopy creates an independent
// evaluator sharing the same keys at negligible cost.
type Evaluator struct {
	params *Parameters
	rlk    *RelinearizationKey
	rtks   *RotationKeySet

	// scratch pools N-length coefficient rows so concurrent operations
	// never share a buffer.
	scratch *sync.Pool

	// workers bounds intra-op parallelism (hoisted decomposition digits and
	// key-switch inner-product rows are partitioned across this many
	// goroutines). 0 or 1 means serial; set via SetIntraOpWorkers.
	workers int

	// keyShoup caches Shoup forms of switching-key digit rows, keyed by
	// *SwitchingKey. Shared across ShallowCopy so the forms are computed
	// once per key regardless of worker count.
	keyShoup *sync.Map

	// monoI is the NTT form of the monomial X^(N/2), precomputed at
	// construction and shared (read-only) across ShallowCopy. Every slot's
	// evaluation point is an odd power 5^j of the primitive 2N-th root, and
	// 5^j = 1 (mod 4), so X^(N/2) evaluates to exactly +i in every slot:
	// multiplying by it is an exact, key-switch-free multiply-by-i.
	monoI *ring.Poly
}

// NewEvaluator creates an evaluator. rlk may be nil if no
// ciphertext-ciphertext multiplications are performed; rtks may be nil if no
// rotations are performed.
func NewEvaluator(params *Parameters, rlk *RelinearizationKey, rtks *RotationKeySet) *Evaluator {
	n := params.N()
	r := params.Ring()
	mono := r.NewPoly(r.MaxLevel())
	for i := range mono.Coeffs {
		mono.Coeffs[i][n/2] = 1
	}
	r.NTT(mono, r.MaxLevel())
	return &Evaluator{
		params: params,
		rlk:    rlk,
		rtks:   rtks,
		scratch: &sync.Pool{New: func() any {
			return make([]uint64, n)
		}},
		keyShoup: &sync.Map{},
		monoI:    mono,
	}
}

// SetIntraOpWorkers sets how many goroutines a single operation may use for
// its decomposition and inner-product loops. Values <= 1 select the serial
// path. Returns the evaluator for chaining.
func (ev *Evaluator) SetIntraOpWorkers(w int) *Evaluator {
	ev.workers = w
	return ev
}

// ShallowCopy returns an evaluator that shares this evaluator's keys,
// parameters, and Shoup-form key cache but owns independent scratch pools.
// A single Evaluator is already goroutine-safe; ShallowCopy exists for
// callers that want explicit per-worker evaluators (e.g. to avoid pool
// contention on very wide fan-out).
func (ev *Evaluator) ShallowCopy() *Evaluator {
	cp := NewEvaluator(ev.params, ev.rlk, ev.rtks)
	cp.keyShoup = ev.keyShoup
	cp.workers = ev.workers
	return cp
}

// getRow leases an N-length scratch row; putRow returns it.
func (ev *Evaluator) getRow() []uint64  { return ev.scratch.Get().([]uint64) }
func (ev *Evaluator) putRow(r []uint64) { ev.scratch.Put(r) }

// getAcc leases a full-height scratch poly from the ring arena (contents
// undefined); putAcc returns it. Full height covers the extended key-switch
// basis {q_0..q_L, P}, so one pool serves accumulators and digits at every
// level.
func (ev *Evaluator) getAcc() *ring.Poly {
	r := ev.params.Ring()
	return r.GetPoly(r.MaxLevel())
}
func (ev *Evaluator) putAcc(p *ring.Poly) { ev.params.Ring().PutPoly(p) }

// forEach partitions [0, count) across the evaluator's intra-op workers.
// With workers <= 1 (the default) it is a plain loop; the parallel split is
// a stride partition, so iteration order within a worker is ascending and
// results are bit-identical to serial as long as iterations are independent.
func (ev *Evaluator) forEach(count int, fn func(i int)) {
	w := ev.workers
	if w > count {
		w = count
	}
	if w <= 1 {
		for i := 0; i < count; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for t := 0; t < w; t++ {
		go func(t int) {
			defer wg.Done()
			for i := t; i < count; i += w {
				fn(i)
			}
		}(t)
	}
	wg.Wait()
}

// Recycle returns ct's limb storage to the ring arena and clears the
// ciphertext. Use it on hot paths (benchmark loops, kernel temporaries) once
// a ciphertext is dead; the next operation at the same level reuses the
// buffers instead of allocating. The ciphertext — and any alias of its
// component polys — must not be used afterwards. Recycling is always
// optional: unrecycled ciphertexts are reclaimed by the GC.
func (ev *Evaluator) Recycle(ct *Ciphertext) {
	if ct == nil {
		return
	}
	r := ev.params.Ring()
	r.PutPoly(ct.C0)
	r.PutPoly(ct.C1)
	r.PutPoly(ct.C2)
	ct.C0, ct.C1, ct.C2 = nil, nil, nil
}

// Params returns the evaluator's parameter set.
func (ev *Evaluator) Params() *Parameters { return ev.params }

const scaleTolerance = 1e-6

func sameScale(a, b float64) bool {
	return math.Abs(a-b) <= scaleTolerance*math.Max(math.Abs(a), math.Abs(b))
}

// leaseAt leases an arena-backed copy of src truncated to the given level.
// Only rows 0..level are copied — a level drop never pays for rows it is
// about to discard. Pair with releaseAligned/Recycle.
func (ev *Evaluator) leaseAt(src *Ciphertext, level int) *Ciphertext {
	r := ev.params.Ring()
	out := &Ciphertext{C0: r.GetPoly(level), C1: r.GetPoly(level), Scale: src.Scale, Lvl: level}
	out.C0.CopyLevel(src.C0, level)
	out.C1.CopyLevel(src.C1, level)
	if src.C2 != nil {
		out.C2 = r.GetPoly(level)
		out.C2.CopyLevel(src.C2, level)
	}
	return out
}

// copyCt leases an arena-backed copy of ct at its own level.
func (ev *Evaluator) copyCt(ct *Ciphertext) *Ciphertext { return ev.leaseAt(ct, ct.Lvl) }

// alignLevels brings a and b to a common level, leasing truncated arena
// copies for whichever input sits higher. The inputs are never modified.
// Callers must hand the pair to releaseAligned when done.
func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext, int) {
	level := a.Lvl
	if b.Lvl < level {
		level = b.Lvl
	}
	ac, bc := a, b
	if a.Lvl > level {
		ac = ev.leaseAt(a, level)
	}
	if b.Lvl > level {
		bc = ev.leaseAt(b, level)
	}
	return ac, bc, level
}

// releaseAligned recycles the copies alignLevels leased (a no-op for inputs
// that were already at the common level and passed through).
func (ev *Evaluator) releaseAligned(a, ac, b, bc *Ciphertext) {
	if ac != a {
		ev.Recycle(ac)
	}
	if bc != b {
		ev.Recycle(bc)
	}
}

// dropPolys truncates every component of ct to level in place.
func dropPolys(ct *Ciphertext, level int) {
	ct.C0.DropLevel(level)
	ct.C1.DropLevel(level)
	if ct.C2 != nil {
		ct.C2.DropLevel(level)
	}
	ct.Lvl = level
}

// DropToLevel reduces ct to the given level in place (a no-op if already
// there). Dropping levels only shrinks the modulus; the message is
// unchanged.
func (ev *Evaluator) DropToLevel(ct *Ciphertext, level int) {
	if level > ct.Lvl {
		panic(fmt.Sprintf("ckks: cannot raise level %d to %d", ct.Lvl, level))
	}
	if level == ct.Lvl {
		return
	}
	dropPolys(ct, level)
}

// Add returns a + b. Degree-2 operands (lazy products) add componentwise; a
// missing C2 on one side counts as zero.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	if !sameScale(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in Add: %g vs %g", a.Scale, b.Scale))
	}
	ac, bc, level := ev.alignLevels(a, b)
	r := ev.params.Ring()
	out := &Ciphertext{C0: r.GetPoly(level), C1: r.GetPoly(level), Scale: ac.Scale, Lvl: level}
	r.Add(ac.C0, bc.C0, out.C0, level)
	r.Add(ac.C1, bc.C1, out.C1, level)
	if ac.C2 != nil || bc.C2 != nil {
		out.C2 = r.GetPoly(level)
		switch {
		case bc.C2 == nil:
			out.C2.CopyLevel(ac.C2, level)
		case ac.C2 == nil:
			out.C2.CopyLevel(bc.C2, level)
		default:
			r.Add(ac.C2, bc.C2, out.C2, level)
		}
	}
	ev.releaseAligned(a, ac, b, bc)
	return out
}

// Sub returns a - b, with the same degree-2 handling as Add.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	if !sameScale(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in Sub: %g vs %g", a.Scale, b.Scale))
	}
	ac, bc, level := ev.alignLevels(a, b)
	r := ev.params.Ring()
	out := &Ciphertext{C0: r.GetPoly(level), C1: r.GetPoly(level), Scale: ac.Scale, Lvl: level}
	r.Sub(ac.C0, bc.C0, out.C0, level)
	r.Sub(ac.C1, bc.C1, out.C1, level)
	switch {
	case ac.C2 == nil && bc.C2 == nil:
	case bc.C2 == nil:
		out.C2 = r.GetPoly(level)
		out.C2.CopyLevel(ac.C2, level)
	case ac.C2 == nil:
		out.C2 = r.GetPolyZero(level)
		r.Sub(out.C2, bc.C2, out.C2, level)
	default:
		out.C2 = r.GetPoly(level)
		r.Sub(ac.C2, bc.C2, out.C2, level)
	}
	ev.releaseAligned(a, ac, b, bc)
	return out
}

// AddPlain returns ct + pt. The plaintext must be at the same scale and at a
// level >= the ciphertext's.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if !sameScale(ct.Scale, pt.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in AddPlain: %g vs %g", ct.Scale, pt.Scale))
	}
	if pt.Lvl < ct.Lvl {
		panic("ckks: plaintext level below ciphertext level")
	}
	r := ev.params.Ring()
	level := ct.Lvl
	out := ev.copyCt(ct)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ro, rp := out.C0.Coeffs[i], pt.Value.Coeffs[i]
		for j := range ro {
			ro[j] = ring.AddMod(ro[j], rp[j], q)
		}
	}
	return out
}

// SubPlain returns ct - pt.
func (ev *Evaluator) SubPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if !sameScale(ct.Scale, pt.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in SubPlain: %g vs %g", ct.Scale, pt.Scale))
	}
	if pt.Lvl < ct.Lvl {
		panic("ckks: plaintext level below ciphertext level")
	}
	r := ev.params.Ring()
	level := ct.Lvl
	out := ev.copyCt(ct)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ro, rp := out.C0.Coeffs[i], pt.Value.Coeffs[i]
		for j := range ro {
			ro[j] = ring.SubMod(ro[j], rp[j], q)
		}
	}
	return out
}

// AddScalar returns ct + x (x added to every slot). The constant is encoded
// at the ciphertext's scale, which costs no level. Scales beyond 62 bits
// (which occur legitimately between rescaling opportunities) take an
// arbitrary-precision path.
func (ev *Evaluator) AddScalar(ct *Ciphertext, x float64) *Ciphertext {
	r := ev.params.Ring()
	level := ct.Lvl
	out := ev.copyCt(ct)
	residues := ev.getRow()
	defer ev.putRow(residues)
	scalarResiduesInto(residues, x, ct.Scale, r, level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		cq := residues[i]
		// A constant polynomial is constant in the NTT domain as well.
		ro := out.C0.Coeffs[i]
		for j := range ro {
			ro[j] = ring.AddMod(ro[j], cq, q)
		}
	}
	return out
}

// AddScalarC adds the complex constant z to every slot without a plaintext
// encoding. The slot-constant vector z = a+bi is the two-term polynomial
// round(a·Δ) + round(b·Δ)·X^(N/2) — the monomial evaluates to +i in every
// slot (see MulByI) — and both terms have closed-form NTT images: a constant
// is itself in every NTT coefficient, and the monomial's image is the
// precomputed monoI table. The addition is therefore pointwise on C0 alone —
// no FFT, no NTT — and exact where the generic encode path rounds through a
// float transform.
func (ev *Evaluator) AddScalarC(ct *Ciphertext, z complex128) *Ciphertext {
	if imag(z) == 0 {
		return ev.AddScalar(ct, real(z))
	}
	r := ev.params.Ring()
	level := ct.Lvl
	out := ev.copyCt(ct)
	reRes := ev.getRow()
	imRes := ev.getRow()
	defer ev.putRow(reRes)
	defer ev.putRow(imRes)
	scalarResiduesInto(reRes, real(z), ct.Scale, r, level)
	scalarResiduesInto(imRes, imag(z), ct.Scale, r, level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ra, rb := reRes[i], imRes[i]
		rs := ring.MForm(rb, q)
		ro := out.C0.Coeffs[i]
		mi := ev.monoI.Coeffs[i]
		for j := range ro {
			ro[j] = ring.AddMod(ro[j], ring.AddMod(ra, ring.MulModShoup(mi[j], rb, rs, q), q), q)
		}
	}
	return out
}

// scalarResiduesInto writes round(x*scale) mod q_i into out[i] for
// i <= level, using int64 arithmetic when the constant fits and big integers
// otherwise. out must have at least level+1 entries; scratch rows qualify.
func scalarResiduesInto(out []uint64, x, scale float64, r *ring.Ring, level int) {
	c := math.Round(x * scale)
	if math.Abs(c) < (1 << 62) {
		ci := int64(c)
		for i := 0; i <= level; i++ {
			q := r.Moduli[i].Q
			if ci >= 0 {
				out[i] = uint64(ci) % q
			} else {
				out[i] = (q - uint64(-ci)%q) % q
			}
		}
		return
	}
	bf := new(big.Float).SetPrec(256).SetFloat64(x)
	bf.Mul(bf, new(big.Float).SetPrec(256).SetFloat64(scale))
	bi, _ := bf.Int(nil)
	tmp := new(big.Int)
	for i := 0; i <= level; i++ {
		q := new(big.Int).SetUint64(r.Moduli[i].Q)
		out[i] = tmp.Mod(bi, q).Uint64()
	}
}

// MulPlain returns ct * pt (slotwise). The result scale is the product of
// the scales; no rescaling is performed.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if pt.Lvl < ct.Lvl {
		panic("ckks: plaintext level below ciphertext level")
	}
	r := ev.params.Ring()
	level := ct.Lvl
	out := &Ciphertext{
		C0:    r.GetPoly(level),
		C1:    r.GetPoly(level),
		Scale: ct.Scale * pt.Scale,
		Lvl:   level,
	}
	r.MulCoeffs(ct.C0, pt.Value, out.C0, level)
	r.MulCoeffs(ct.C1, pt.Value, out.C1, level)
	if ct.C2 != nil {
		out.C2 = r.GetPoly(level)
		r.MulCoeffs(ct.C2, pt.Value, out.C2, level)
	}
	return out
}

// MulScalar returns ct * x with the scalar encoded at scale f. The result
// scale is ct.Scale * f. Encoding a scalar as the constant polynomial
// round(x*f) multiplies every slot without a full plaintext encoding.
func (ev *Evaluator) MulScalar(ct *Ciphertext, x float64, f float64) *Ciphertext {
	// Exact-unit shortcut: when the encoded constant round(x*f) is 1 the
	// multiplication is the identity on every coefficient, so only the scale
	// moves. The complex-packing kernels lean on this — their /4 corrections
	// multiply by 0.25 at factor 4, which encodes as exactly 1.
	if math.Round(x*f) == 1 {
		out := ev.copyCt(ct)
		out.Scale = ct.Scale * f
		return out
	}
	r := ev.params.Ring()
	level := ct.Lvl
	out := &Ciphertext{
		C0:    r.GetPoly(level),
		C1:    r.GetPoly(level),
		Scale: ct.Scale * f,
		Lvl:   level,
	}
	if ct.C2 != nil {
		out.C2 = r.GetPoly(level)
	}
	residues := ev.getRow()
	defer ev.putRow(residues)
	scalarResiduesInto(residues, x, f, r, level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		cq := residues[i]
		cs := ring.MForm(cq, q)
		pairs := [][2][]uint64{
			{ct.C0.Coeffs[i], out.C0.Coeffs[i]},
			{ct.C1.Coeffs[i], out.C1.Coeffs[i]},
		}
		if ct.C2 != nil {
			pairs = append(pairs, [2][]uint64{ct.C2.Coeffs[i], out.C2.Coeffs[i]})
		}
		for _, pair := range pairs {
			src, dst := pair[0], pair[1]
			for j := range dst {
				dst[j] = ring.MulModShoup(src[j], cq, cs, q)
			}
		}
	}
	return out
}

// MulByI multiplies every slot by the imaginary unit i, exactly and without
// consuming scale: the multiplier is the ring monomial X^(N/2) (see monoI),
// so the product is a plain NTT pointwise multiply — no encoding, no
// rounding, no key switch.
func (ev *Evaluator) MulByI(ct *Ciphertext) *Ciphertext {
	r := ev.params.Ring()
	level := ct.Lvl
	out := &Ciphertext{
		C0:    r.GetPoly(level),
		C1:    r.GetPoly(level),
		Scale: ct.Scale,
		Lvl:   level,
	}
	r.MulCoeffs(ct.C0, ev.monoI, out.C0, level)
	r.MulCoeffs(ct.C1, ev.monoI, out.C1, level)
	if ct.C2 != nil {
		out.C2 = r.GetPoly(level)
		r.MulCoeffs(ct.C2, ev.monoI, out.C2, level)
	}
	return out
}

// Mul returns a * b, relinearized back to degree 1. The result scale is the
// product of the input scales; callers rescale afterwards.
func (ev *Evaluator) Mul(a, b *Ciphertext) *Ciphertext {
	d := ev.MulNoRelin(a, b)
	out := ev.Relinearize(d)
	// Relinearize leaves its input untouched (callers of the public op own
	// their ciphertexts); the tensor intermediate is ours to return.
	ev.Recycle(d)
	return out
}

// MulNoRelin returns a * b as a degree-2 ciphertext, leaving the
// relinearization key-switch to a later explicit Relinearize. Linear
// operations (Add, Sub, MulScalar, MulByI) act componentwise on degree-2
// ciphertexts, so several products that are only combined linearly can
// share a single relinearization — the lazy-relinearize half of the
// graph-level scale pass.
func (ev *Evaluator) MulNoRelin(a, b *Ciphertext) *Ciphertext {
	if a.C2 != nil || b.C2 != nil {
		panic("ckks: MulNoRelin operands must be degree 1 (relinearize first)")
	}
	ac, bc, level := ev.alignLevels(a, b)
	r := ev.params.Ring()

	d0 := r.GetPoly(level)
	d1 := r.GetPoly(level)
	d2 := r.GetPoly(level)
	r.MulCoeffs(ac.C0, bc.C0, d0, level)
	r.MulCoeffs(ac.C0, bc.C1, d1, level)
	r.MulCoeffsAndAdd(ac.C1, bc.C0, d1, level)
	r.MulCoeffs(ac.C1, bc.C1, d2, level)

	scale := ac.Scale * bc.Scale
	ev.releaseAligned(a, ac, b, bc)
	return &Ciphertext{C0: d0, C1: d1, C2: d2, Scale: scale, Lvl: level}
}

// Relinearize key-switches a degree-2 ciphertext's C2 component back into
// (C0, C1). Degree-1 inputs pass through unchanged.
func (ev *Evaluator) Relinearize(ct *Ciphertext) *Ciphertext {
	if ct.C2 == nil {
		return ct
	}
	if ev.rlk == nil {
		panic("ckks: evaluator has no relinearization key")
	}
	r := ev.params.Ring()
	level := ct.Lvl
	dec := ev.hoistedDecompose(ct.C2, level)
	e0, e1 := ev.keySwitchFromDecomp(dec, nil, ev.rlk.Key)
	dec.Release()
	d0 := r.GetPoly(level)
	d1 := r.GetPoly(level)
	r.Add(ct.C0, e0, d0, level)
	r.Add(ct.C1, e1, d1, level)
	ev.putAcc(e0)
	ev.putAcc(e1)
	return &Ciphertext{C0: d0, C1: d1, Scale: ct.Scale, Lvl: level}
}

// RotateLeft rotates the slot vector left by k positions (slot i of the
// result holds slot i+k of the input). Requires the corresponding Galois
// key.
func (ev *Evaluator) RotateLeft(ct *Ciphertext, k int) *Ciphertext {
	slots := ev.params.Slots()
	k = ((k % slots) + slots) % slots
	if k == 0 {
		return ev.copyCt(ct)
	}
	galEl := ev.params.Ring().GaloisElementForRotation(k)
	return ev.applyGalois(ct, galEl)
}

// RotateRight rotates the slot vector right by k positions.
func (ev *Evaluator) RotateRight(ct *Ciphertext, k int) *Ciphertext {
	return ev.RotateLeft(ct, -k)
}

// Conjugate applies complex conjugation to every slot.
func (ev *Evaluator) Conjugate(ct *Ciphertext) *Ciphertext {
	return ev.applyGalois(ct, ev.params.Ring().GaloisElementConjugate())
}

// applyGalois routes through the hoisted key-switch path (see hoisting.go)
// with a single-use decomposition, so per-amount rotations and hoisted
// batches produce bit-identical ciphertexts.
func (ev *Evaluator) applyGalois(ct *Ciphertext, galEl uint64) *Ciphertext {
	if ct.C2 != nil {
		panic("ckks: cannot apply a Galois automorphism to a degree-2 ciphertext (relinearize first)")
	}
	dec := ev.hoistedDecompose(ct.C1, ct.Lvl)
	out := ev.applyGaloisHoisted(ct, dec, galEl)
	dec.Release()
	return out
}

// modDownByP divides acc (rows 0..level valid, plus the special-prime row)
// by the special prime P with centered rounding, in the NTT domain. The
// P^{-1} mod q_j constants come precomputed from the parameter set.
func (ev *Evaluator) modDownByP(acc *ring.Poly, level int) {
	params := ev.params
	r := params.Ring()
	pIdx := params.pIndex()
	p := r.Moduli[pIdx].Q
	halfP := p >> 1
	n := r.N

	pRow := ev.getRow()
	defer ev.putRow(pRow)
	copy(pRow, acc.Coeffs[pIdx])
	r.InvNTTSingle(pIdx, pRow)

	tmp := ev.getRow()
	defer ev.putRow(tmp)
	for j := 0; j <= level; j++ {
		qj := r.Moduli[j].Q
		for k := 0; k < n; k++ {
			v := pRow[k]
			if v > halfP {
				// Centered representative v - P (negative).
				tmp[k] = (qj - (p-v)%qj) % qj
			} else {
				tmp[k] = v % qj
			}
		}
		r.NTTSingle(j, tmp)

		pInv := params.pInvModQ[j]
		pInvS := params.pInvModQShoup[j]
		rowJ := acc.Coeffs[j]
		for k := 0; k < n; k++ {
			rowJ[k] = ring.MulModShoup(ring.SubMod(rowJ[k], tmp[k], qj), pInv, pInvS, qj)
		}
	}
}

// Rescale divides ct by its top chain prime, dropping one level and
// reducing the scale accordingly. It panics at level 0.
func (ev *Evaluator) Rescale(ct *Ciphertext) {
	level := ct.Lvl
	if level == 0 {
		panic("ckks: cannot rescale below level 0")
	}
	r := ev.params.Ring()
	qTop := r.Moduli[level].Q
	halfQ := qTop >> 1
	n := r.N

	tmp := ev.getRow()
	top := ev.getRow()
	defer ev.putRow(tmp)
	defer ev.putRow(top)
	qInvRow := ev.params.rescaleQInv[level]
	qInvSRow := ev.params.rescaleQInvShoup[level]
	polys := [3]*ring.Poly{ct.C0, ct.C1, ct.C2}
	for _, c := range polys {
		if c == nil {
			continue
		}
		copy(top, c.Coeffs[level])
		r.InvNTTSingle(level, top)
		for j := 0; j < level; j++ {
			qj := r.Moduli[j].Q
			for k := 0; k < n; k++ {
				v := top[k]
				if v > halfQ {
					tmp[k] = (qj - (qTop-v)%qj) % qj
				} else {
					tmp[k] = v % qj
				}
			}
			r.NTTSingle(j, tmp)
			qInv, qInvS := qInvRow[j], qInvSRow[j]
			rowJ := c.Coeffs[j]
			for k := 0; k < n; k++ {
				rowJ[k] = ring.MulModShoup(ring.SubMod(rowJ[k], tmp[k], qj), qInv, qInvS, qj)
			}
		}
		c.DropLevel(level - 1)
	}
	ct.Scale /= float64(qTop)
	ct.Lvl--
}

// RescaleMany rescales n times.
func (ev *Evaluator) RescaleMany(ct *Ciphertext, n int) {
	for i := 0; i < n; i++ {
		ev.Rescale(ct)
	}
}
