package ckks

import (
	"fmt"

	"chet/internal/ring"
)

// Halevi-Shoup hoisted key switching. A rotation's key switch splits into
// two parts: the digit decomposition of c1 (inverse NTT, per-digit spread
// across the extended basis {q_0..q_level, P}, and one forward NTT per
// (digit, prime) pair — the expensive part) and the inner product of those
// digits against the rotation key (cheap). The decomposition depends only
// on the source ciphertext, not on the rotation amount, and the Galois
// automorphism acts on the decomposed digits as a per-row NTT-domain
// permutation. Hoisting therefore decomposes once and reuses the digits
// for every rotation amount, which is the dominant cost of the HTC conv,
// pool, and dense kernels (they rotate one ciphertext by many amounts).
//
// Every rotation — including single-amount RotateLeft — runs through this
// path, so hoisted and per-amount rotations are bit-identical by
// construction.

// HoistedDecomposition holds the extended-basis NTT digits of a
// ciphertext's degree-one component: digits[i] carries, in rows
// {0..level, pIndex}, the NTT of (c1's i-th RNS digit mod q_j). It is
// read-only once built, so one decomposition may serve concurrent
// RotateLeftHoisted calls.
type HoistedDecomposition struct {
	level  int
	digits []*ring.Poly
	ev     *Evaluator
}

// Level returns the ciphertext level the decomposition was taken at.
func (dec *HoistedDecomposition) Level() int { return dec.level }

// Release returns the decomposition's digit storage to the evaluator's
// scratch pool. The decomposition must not be used afterwards. Calling
// Release is optional (the GC reclaims unreleased digits) but recommended
// on hot paths.
func (dec *HoistedDecomposition) Release() {
	for _, d := range dec.digits {
		dec.ev.putAcc(d)
	}
	dec.digits = nil
}

// HoistedDecompose computes the digit decomposition of ct's degree-one
// component once, for reuse across any number of rotation amounts via
// RotateLeftHoisted.
func (ev *Evaluator) HoistedDecompose(ct *Ciphertext) *HoistedDecomposition {
	return ev.hoistedDecompose(ct.C1, ct.Lvl)
}

func (ev *Evaluator) hoistedDecompose(c2 *ring.Poly, level int) *HoistedDecomposition {
	params := ev.params
	r := params.Ring()
	rows := params.ksRows(level)

	// Inverse NTT of c2 into scratch; the input is never mutated.
	coef := ev.getAcc()
	ev.forEach(level+1, func(i int) {
		copy(coef.Coeffs[i], c2.Coeffs[i])
		r.InvNTTSingle(i, coef.Coeffs[i])
	})

	dec := &HoistedDecomposition{level: level, ev: ev, digits: make([]*ring.Poly, level+1)}
	ev.forEach(level+1, func(i int) {
		d := ev.getAcc()
		ev.spreadDigit(coef.Coeffs[i], i, rows, d)
		dec.digits[i] = d
	})
	ev.putAcc(coef)
	return dec
}

// spreadDigit builds one extended-basis NTT digit: it spreads digit i's
// coefficient-domain residues (in [0, q_i)) across the given basis rows of d
// and transforms each row forward.
func (ev *Evaluator) spreadDigit(digits []uint64, i int, rows []int, d *ring.Poly) {
	r := ev.params.Ring()
	n := r.N
	for _, j := range rows {
		row := d.Coeffs[j]
		if j == i {
			copy(row, digits)
		} else {
			qj := r.Moduli[j].Q
			for k := 0; k < n; k++ {
				row[k] = digits[k] % qj
			}
		}
		r.NTTSingle(j, row)
	}
}

// RotateHoisted rotates ct left by every amount in ks, sharing one digit
// decomposition across all of them. Each output is bit-identical to the
// corresponding RotateLeft(ct, k) call; only the decomposition work is
// amortized. Amounts that reduce to 0 mod slots yield copies.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, ks []int) []*Ciphertext {
	outs := make([]*Ciphertext, len(ks))
	slots := ev.params.Slots()
	var dec *HoistedDecomposition
	for idx, k := range ks {
		kk := ((k % slots) + slots) % slots
		if kk == 0 {
			outs[idx] = ev.copyCt(ct)
			continue
		}
		if dec == nil {
			dec = ev.HoistedDecompose(ct)
		}
		outs[idx] = ev.applyGaloisHoisted(ct, dec, ev.params.Ring().GaloisElementForRotation(kk))
	}
	if dec != nil {
		dec.Release()
	}
	return outs
}

// RotateLeftHoisted rotates ct left by k using a decomposition previously
// taken from the same ciphertext with HoistedDecompose. The caller owns
// dec's lifetime; concurrent calls sharing one dec are safe.
func (ev *Evaluator) RotateLeftHoisted(ct *Ciphertext, dec *HoistedDecomposition, k int) *Ciphertext {
	slots := ev.params.Slots()
	k = ((k % slots) + slots) % slots
	if k == 0 {
		return ev.copyCt(ct)
	}
	return ev.applyGaloisHoisted(ct, dec, ev.params.Ring().GaloisElementForRotation(k))
}

// applyGaloisHoisted produces the automorphic image of ct for galEl from
// ct's hoisted decomposition: the digit rows are gathered through the
// automorphism's NTT permutation during the key inner product, the result
// is divided by P, and the automorphism of c0 is added in.
func (ev *Evaluator) applyGaloisHoisted(ct *Ciphertext, dec *HoistedDecomposition, galEl uint64) *Ciphertext {
	swk, err := ev.rtks.RotationKeyFor(galEl)
	if err != nil {
		panic(err)
	}
	r := ev.params.Ring()
	level := ct.Lvl
	if dec.level != level {
		panic(fmt.Sprintf("ckks: hoisted decomposition at level %d applied to ciphertext at level %d", dec.level, level))
	}
	perm := r.NTTPermutation(galEl)
	e0, e1 := ev.keySwitchFromDecomp(dec, perm, swk)

	rc0 := r.GetPoly(level)
	r.AutomorphismNTT(ct.C0, galEl, rc0, level)
	r.Add(rc0, e0, rc0, level)

	c1 := r.GetPoly(level)
	c1.CopyLevel(e1, level)
	ev.putAcc(e0)
	ev.putAcc(e1)
	return &Ciphertext{C0: rc0, C1: c1, Scale: ct.Scale, Lvl: level}
}

// keySwitchFromDecomp runs the cheap half of the key switch: the inner
// product of the decomposed digits (optionally gathered through an
// automorphism permutation) against the switching key, with Shoup-lazy
// multiply-accumulate (accumulators stay in [0, 2q) and are reduced once),
// followed by the division by the special prime P. The returned polys come
// from the evaluator's accumulator pool — rows 0..level are valid — and
// must be handed back with putAcc once folded into their destination.
func (ev *Evaluator) keySwitchFromDecomp(dec *HoistedDecomposition, perm []int, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	acc0, acc1 := ev.ksInnerProduct(dec, perm, swk)
	ev.modDownByP(acc0, dec.level)
	ev.modDownByP(acc1, dec.level)
	return acc0, acc1
}

// ksInnerProduct is the inner product alone, without the division by P: the
// returned accumulators still carry the special-prime row. The fused
// rescale-into-key-switch output pass consumes them directly; everything
// else goes through keySwitchFromDecomp. The loop is row-major — each
// extended-basis row accumulates over all digits independently — so rows
// partition cleanly across intra-op workers while keeping the per-row
// accumulation order (digits ascending) identical to serial.
func (ev *Evaluator) ksInnerProduct(dec *HoistedDecomposition, perm []int, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	params := ev.params
	r := params.Ring()
	level := dec.level
	rows := params.ksRows(level)
	sh := ev.shoupFor(swk)

	acc0 := ev.getAcc()
	acc1 := ev.getAcc()
	ev.forEach(len(rows), func(ri int) {
		j := rows[ri]
		q := r.Moduli[j].Q
		zeroRow(acc0.Coeffs[j])
		zeroRow(acc1.Coeffs[j])
		for i := 0; i <= level; i++ {
			x := dec.digits[i].Coeffs[j]
			b, bs := swk.B[i].Coeffs[j], sh.BS[i].Coeffs[j]
			a, as := swk.A[i].Coeffs[j], sh.AS[i].Coeffs[j]
			if perm == nil {
				ring.VecMulAddShoupLazy(acc0.Coeffs[j], x, b, bs, q)
				ring.VecMulAddShoupLazy(acc1.Coeffs[j], x, a, as, q)
			} else {
				ring.VecMulAddShoupLazyPerm(acc0.Coeffs[j], x, perm, b, bs, q)
				ring.VecMulAddShoupLazyPerm(acc1.Coeffs[j], x, perm, a, as, q)
			}
		}
		ring.VecReduceLazy(acc0.Coeffs[j], q)
		ring.VecReduceLazy(acc1.Coeffs[j], q)
	})
	return acc0, acc1
}

func zeroRow(row []uint64) {
	for k := range row {
		row[k] = 0
	}
}

// swkShoup caches the Shoup forms of a switching key's digit rows, the
// fixed multiplicands of the key-switch inner product.
type swkShoup struct {
	BS, AS []*ring.Poly
}

// shoupFor returns (building on first use) the Shoup forms for swk. The
// cache is shared across ShallowCopy evaluators; keys are read-only after
// construction, so concurrent builders converge on identical values.
func (ev *Evaluator) shoupFor(swk *SwitchingKey) *swkShoup {
	if v, ok := ev.keyShoup.Load(swk); ok {
		return v.(*swkShoup)
	}
	r := ev.params.Ring()
	sh := &swkShoup{
		BS: make([]*ring.Poly, len(swk.B)),
		AS: make([]*ring.Poly, len(swk.A)),
	}
	for i := range swk.B {
		sh.BS[i] = shoupPoly(r, swk.B[i])
		sh.AS[i] = shoupPoly(r, swk.A[i])
	}
	v, _ := ev.keyShoup.LoadOrStore(swk, sh)
	return v.(*swkShoup)
}

// shoupPoly precomputes the Shoup form of every row of p into a contiguous
// poly, so the inner product streams key rows from adjacent memory. Built
// once per key; never pooled.
func shoupPoly(r *ring.Ring, p *ring.Poly) *ring.Poly {
	out := r.NewPoly(len(p.Coeffs) - 1)
	for j := range p.Coeffs {
		q := r.Moduli[j].Q
		row := out.Coeffs[j]
		for k, v := range p.Coeffs[j] {
			row[k] = ring.MForm(v, q)
		}
	}
	return out
}
