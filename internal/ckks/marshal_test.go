package ckks

import (
	"bytes"
	"math"
	"testing"

	"chet/internal/ring"
)

func polysEqual(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	values := randomVector(tc.params.Slots(), 5, 31)
	ct := tc.encr.Encrypt(tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel()))

	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Ciphertext
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Lvl != ct.Lvl || got.Scale != ct.Scale {
		t.Fatalf("metadata mismatch: %d/%g vs %d/%g", got.Lvl, got.Scale, ct.Lvl, ct.Scale)
	}
	if !polysEqual(got.C0.Coeffs, ct.C0.Coeffs) || !polysEqual(got.C1.Coeffs, ct.C1.Coeffs) {
		t.Fatal("polynomial mismatch after roundtrip")
	}

	// The deserialized ciphertext still decrypts correctly.
	dec := tc.enc.Decode(tc.decr.Decrypt(&got))
	if d := maxAbsDiff(values, dec); d > 1e-5 {
		t.Fatalf("decryption after roundtrip deviates by %g", d)
	}
}

func TestPlaintextAndKeysMarshalRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	pt := tc.enc.Encode([]float64{1, 2, 3}, tc.params.DefaultScale(), tc.params.MaxLevel())

	data, err := pt.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var gotPT Plaintext
	if err := gotPT.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !polysEqual(gotPT.Value.Coeffs, pt.Value.Coeffs) {
		t.Fatal("plaintext mismatch")
	}

	skData, err := tc.sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var gotSK SecretKey
	if err := gotSK.UnmarshalBinary(skData); err != nil {
		t.Fatal(err)
	}
	if !polysEqual(gotSK.Value.Coeffs, tc.sk.Value.Coeffs) {
		t.Fatal("secret key mismatch")
	}

	pkData, err := tc.pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var gotPK PublicKey
	if err := gotPK.UnmarshalBinary(pkData); err != nil {
		t.Fatal(err)
	}
	if !polysEqual(gotPK.A.Coeffs, tc.pk.A.Coeffs) || !polysEqual(gotPK.B.Coeffs, tc.pk.B.Coeffs) {
		t.Fatal("public key mismatch")
	}

	// A deserialized public key encrypts correctly.
	encr2 := NewEncryptor(tc.params, &gotPK, ring.NewTestPRNG(41))
	values := randomVector(tc.params.Slots(), 3, 32)
	ct := encr2.Encrypt(tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel()))
	dec := tc.enc.Decode(tc.decr.Decrypt(ct))
	if d := maxAbsDiff(values, dec); d > 1e-5 {
		t.Fatalf("encryption under deserialized key deviates by %g", d)
	}
}

func TestRelinAndRotationKeysMarshalRoundTrip(t *testing.T) {
	tc := newTestContext(t)

	rlkData, err := tc.rlk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var gotRLK RelinearizationKey
	if err := gotRLK.UnmarshalBinary(rlkData); err != nil {
		t.Fatal(err)
	}

	rtks := tc.kgen.GenRotationKeys(tc.sk, []int{1, 7}, true)
	rtksData, err := rtks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var gotRTKS RotationKeySet
	if err := gotRTKS.UnmarshalBinary(rtksData); err != nil {
		t.Fatal(err)
	}
	if len(gotRTKS.Keys) != len(rtks.Keys) {
		t.Fatalf("key count %d != %d", len(gotRTKS.Keys), len(rtks.Keys))
	}

	// Deserialized evaluation keys actually evaluate: square then rotate.
	ev := NewEvaluator(tc.params, &gotRLK, &gotRTKS)
	values := randomVector(tc.params.Slots(), 2, 33)
	ct := tc.encr.Encrypt(tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel()))
	sq := ev.Mul(ct, ct)
	ev.Rescale(sq)
	rot := ev.RotateLeft(sq, 7)
	dec := tc.enc.Decode(tc.decr.Decrypt(rot))
	slots := tc.params.Slots()
	for i := 0; i < slots; i++ {
		want := values[(i+7)%slots] * values[(i+7)%slots]
		if math.Abs(dec[i]-want) > 1e-2 {
			t.Fatalf("slot %d: got %g want %g", i, dec[i], want)
		}
	}

	// Serialization is deterministic.
	again, _ := rtks.MarshalBinary()
	if !bytes.Equal(rtksData, again) {
		t.Fatal("rotation key serialization is not deterministic")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	tc := newTestContext(t)
	ct := tc.encr.Encrypt(tc.enc.Encode([]float64{1}, tc.params.DefaultScale(), tc.params.MaxLevel()))
	data, _ := ct.MarshalBinary()

	var out Ciphertext
	// Wrong magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if err := out.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected magic error")
	}
	// Truncated.
	if err := out.UnmarshalBinary(data[:len(data)/2]); err == nil {
		t.Fatal("expected truncation error")
	}
	// Trailing garbage.
	if err := out.UnmarshalBinary(append(append([]byte(nil), data...), 1, 2, 3)); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
	// Wrong object type.
	pkData, _ := tc.pk.MarshalBinary()
	if err := out.UnmarshalBinary(pkData); err == nil {
		t.Fatal("expected type-confusion error")
	}
}
