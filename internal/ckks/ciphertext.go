package ckks

import "chet/internal/ring"

// Ciphertext is an RNS-CKKS ciphertext in NTT domain. Degree-1 ciphertexts
// (the common case) hold (C0, C1) and decrypt to C0 + C1*s; an unrelinearized
// product (MulNoRelin) additionally carries C2, decrypting to
// C0 + C1*s + C2*s². It carries its level (index of the top chain prime
// still in use) and fixed-point scale.
type Ciphertext struct {
	C0, C1 *ring.Poly
	// C2 is non-nil only between MulNoRelin and Relinearize (degree 2).
	C2    *ring.Poly
	Scale float64
	Lvl   int
}

// Level returns the ciphertext level.
func (ct *Ciphertext) Level() int { return ct.Lvl }

// Degree returns 1 for relinearized ciphertexts, 2 for lazy products.
func (ct *Ciphertext) Degree() int {
	if ct.C2 != nil {
		return 2
	}
	return 1
}

// CopyNew returns a deep copy.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	out := &Ciphertext{
		C0:    ct.C0.CopyNew(),
		C1:    ct.C1.CopyNew(),
		Scale: ct.Scale,
		Lvl:   ct.Lvl,
	}
	if ct.C2 != nil {
		out.C2 = ct.C2.CopyNew()
	}
	return out
}

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params  *Parameters
	pk      *PublicKey
	sampler *ring.Sampler
}

// NewEncryptor creates an encryptor.
func NewEncryptor(params *Parameters, pk *PublicKey, prng ring.PRNG) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSampler(params.Ring(), prng)}
}

// Encrypt produces a fresh encryption of pt at pt's level.
func (e *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	r := e.params.Ring()
	level := pt.Lvl

	u := r.NewPoly(level)
	e.sampler.TernaryPoly(u, level)
	r.NTT(u, level)

	e0 := r.NewPoly(level)
	e.sampler.GaussianPoly(e0, level)
	r.NTT(e0, level)

	e1 := r.NewPoly(level)
	e.sampler.GaussianPoly(e1, level)
	r.NTT(e1, level)

	c0 := r.NewPoly(level)
	r.MulCoeffs(e.pk.B, u, c0, level)
	r.Add(c0, e0, c0, level)
	r.Add(c0, pt.Value, c0, level)

	c1 := r.NewPoly(level)
	r.MulCoeffs(e.pk.A, u, c1, level)
	r.Add(c1, e1, c1, level)

	return &Ciphertext{C0: c0, C1: c1, Scale: pt.Scale, Lvl: level}
}

// Decryptor recovers plaintexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor creates a decryptor.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt returns the plaintext underlying ct.
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	r := d.params.Ring()
	level := ct.Lvl
	pt := r.NewPoly(level)
	r.MulCoeffs(ct.C1, d.sk.Value, pt, level)
	r.Add(pt, ct.C0, pt, level)
	if ct.C2 != nil {
		// Degree-2 decryption: + C2*s². Only reachable when a lazy product
		// is decrypted before relinearization (tests do; circuits don't).
		s2 := r.NewPoly(level)
		r.MulCoeffs(d.sk.Value, d.sk.Value, s2, level)
		r.MulCoeffs(ct.C2, s2, s2, level)
		r.Add(pt, s2, pt, level)
	}
	return &Plaintext{Value: pt, Scale: ct.Scale, Lvl: level}
}
