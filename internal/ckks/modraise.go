package ckks

import (
	"fmt"

	"chet/internal/ring"
)

// ModRaise lifts a level-0 ciphertext back to the full modulus chain. The
// ciphertext polynomials are taken out of the NTT domain modulo q_0, each
// coefficient is interpreted as its centered representative in
// (-q_0/2, q_0/2], and that signed integer is reduced into every prime of
// the chain. The result decrypts to m + q_0·I for a small integer
// polynomial I (||I||_∞ is bounded by the secret-key hamming weight), which
// is exactly the input bootstrapping's EvalMod step removes. The scale is
// unchanged; the caller sees a fresh-level ciphertext whose message carries
// a q_0·I additive term.
//
// ModRaise requires a degree-1 ciphertext at level 0: bootstrapping drops
// exhausted ciphertexts to the bottom of the chain first so the lift only
// has a single-prime CRT basis to leave.
func (ev *Evaluator) ModRaise(ct *Ciphertext) *Ciphertext {
	if ct.C2 != nil {
		panic("ckks: ModRaise requires a degree-1 ciphertext (relinearize first)")
	}
	if ct.Lvl != 0 {
		panic(fmt.Sprintf("ckks: ModRaise requires a level-0 ciphertext, got level %d (DropToLevel first)", ct.Lvl))
	}
	r := ev.params.Ring()
	top := ev.params.MaxLevel()
	out := &Ciphertext{C0: r.GetPoly(top), C1: r.GetPoly(top), Scale: ct.Scale, Lvl: top}
	ev.modRaisePoly(ct.C0, out.C0, top)
	ev.modRaisePoly(ct.C1, out.C1, top)
	return out
}

// modRaisePoly lifts src (one valid row, NTT domain mod q_0) into rows
// 0..top of dst, NTT domain, via the centered representative mod q_0.
func (ev *Evaluator) modRaisePoly(src, dst *ring.Poly, top int) {
	r := ev.params.Ring()
	n := r.N
	q0 := r.Moduli[0].Q
	half := q0 >> 1

	row := ev.getRow()
	defer ev.putRow(row)
	copy(row, src.Coeffs[0])
	r.InvNTTSingle(0, row)

	ev.forEach(top+1, func(i int) {
		dstRow := dst.Coeffs[i]
		if i == 0 {
			copy(dstRow, row)
		} else {
			qi := r.Moduli[i].Q
			for j := 0; j < n; j++ {
				c := row[j]
				if c > half {
					// Negative representative c - q_0: reduce |c - q_0|.
					if m := (q0 - c) % qi; m != 0 {
						dstRow[j] = qi - m
					} else {
						dstRow[j] = 0
					}
				} else {
					dstRow[j] = c % qi
				}
			}
		}
		r.NTTSingle(i, dstRow)
	})
}

// ApplyGalois applies the automorphism X -> X^galEl using the hoisted
// key-switch path. Unlike RotateLeft it performs no slot normalization on
// the Galois element, which is what bootstrapping's partial-sum (trace)
// step needs: its automorphisms correspond to rotation amounts that are
// multiples of the slot count — the identity on the packed slots of a
// sub-ring element, but not on the dense mod-raised ciphertext. Requires a
// rotation key for galEl.
func (ev *Evaluator) ApplyGalois(ct *Ciphertext, galEl uint64) *Ciphertext {
	return ev.applyGalois(ct, galEl)
}
