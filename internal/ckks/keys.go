package ckks

import (
	"fmt"

	"chet/internal/ring"
)

// SecretKey is the ternary secret s, stored in NTT domain over all primes
// (chain plus special).
type SecretKey struct {
	Value *ring.Poly
}

// PublicKey is an encryption of zero (b, a) with b = -a*s + e, stored in NTT
// domain over the chain primes only.
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey re-encrypts a ciphertext component from a source secret s' to
// the canonical secret s. One (B, A) pair per RNS digit; each pair spans the
// full prime set including the special prime.
type SwitchingKey struct {
	B, A []*ring.Poly
}

// RelinearizationKey switches from s^2 to s, enabling ciphertext-ciphertext
// multiplication.
type RelinearizationKey struct {
	Key *SwitchingKey
}

// RotationKeySet holds Galois keys indexed by Galois element.
type RotationKeySet struct {
	Keys map[uint64]*SwitchingKey
}

// GaloisElements returns the set of Galois elements with keys, useful for
// asserting which rotations a runtime may perform.
func (r *RotationKeySet) GaloisElements() []uint64 {
	out := make([]uint64, 0, len(r.Keys))
	for g := range r.Keys {
		out = append(out, g)
	}
	return out
}

// KeyGenerator samples keys for a parameter set.
type KeyGenerator struct {
	params  *Parameters
	sampler *ring.Sampler
}

// NewKeyGenerator creates a key generator drawing randomness from prng.
func NewKeyGenerator(params *Parameters, prng ring.PRNG) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: ring.NewSampler(params.Ring(), prng)}
}

// GenSecretKey samples a fresh ternary secret key.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	r := kg.params.Ring()
	full := r.MaxLevel() // includes the special prime row
	s := r.NewPoly(full)
	kg.sampler.TernaryPoly(s, full)
	r.NTT(s, full)
	return &SecretKey{Value: s}
}

// GenPublicKey derives an encryption key from sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	r := kg.params.Ring()
	level := kg.params.MaxLevel() // chain primes only

	a := r.NewPoly(level)
	kg.sampler.UniformPoly(a, level)

	e := r.NewPoly(level)
	kg.sampler.GaussianPoly(e, level)
	r.NTT(e, level)

	b := r.NewPoly(level)
	r.MulCoeffs(a, sk.Value, b, level) // a*s (sk rows 0..level align with chain)
	r.Neg(b, b, level)
	r.Add(b, e, b, level)
	return &PublicKey{B: b, A: a}
}

// genSwitchingKey builds a key switching from secret sPrime (NTT domain,
// full prime set) to sk.
func (kg *KeyGenerator) genSwitchingKey(sk *SecretKey, sPrime *ring.Poly) *SwitchingKey {
	params := kg.params
	r := params.Ring()
	full := r.MaxLevel() // chain primes + special prime
	numDigits := params.MaxLevel() + 1
	pIdx := params.pIndex()
	pMod := params.PSpecial()

	swk := &SwitchingKey{
		B: make([]*ring.Poly, numDigits),
		A: make([]*ring.Poly, numDigits),
	}

	for i := 0; i < numDigits; i++ {
		a := r.NewPoly(full)
		kg.sampler.UniformPoly(a, full)

		e := r.NewPoly(full)
		kg.sampler.GaussianPoly(e, full)
		r.NTT(e, full)

		// b = -a*s + e + P*F_i*s' where F_i ≡ δ_ij mod q_j and ≡ 0 mod P:
		// only the i-th chain row receives the (P mod q_i)*s' term.
		b := r.NewPoly(full)
		r.MulCoeffs(a, sk.Value, b, full)
		r.Neg(b, b, full)
		r.Add(b, e, b, full)

		qi := r.Moduli[i].Q
		pModQi := pMod % qi
		pShoup := ring.MForm(pModQi, qi)
		rowB := b.Coeffs[i]
		rowS := sPrime.Coeffs[i]
		for j := range rowB {
			term := ring.MulModShoup(rowS[j], pModQi, pShoup, qi)
			rowB[j] = ring.AddMod(rowB[j], term, qi)
		}
		_ = pIdx // special-prime row carries no message term by construction

		swk.B[i] = b
		swk.A[i] = a
	}
	return swk
}

// GenRelinearizationKey produces the key switching s^2 -> s.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	r := kg.params.Ring()
	full := r.MaxLevel()
	s2 := r.NewPoly(full)
	r.MulCoeffs(sk.Value, sk.Value, s2, full)
	return &RelinearizationKey{Key: kg.genSwitchingKey(sk, s2)}
}

// GenRotationKeys produces Galois keys for the given slot rotations
// (positive = left). Pass includeConjugate to add the conjugation key.
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, rotations []int, includeConjugate bool) *RotationKeySet {
	r := kg.params.Ring()
	set := &RotationKeySet{Keys: make(map[uint64]*SwitchingKey)}
	gals := make([]uint64, 0, len(rotations)+1)
	for _, k := range rotations {
		if k == 0 {
			continue
		}
		gals = append(gals, r.GaloisElementForRotation(k))
	}
	if includeConjugate {
		gals = append(gals, r.GaloisElementConjugate())
	}
	full := r.MaxLevel()
	for _, g := range gals {
		if _, ok := set.Keys[g]; ok {
			continue
		}
		sPrime := r.NewPoly(full)
		r.AutomorphismNTT(sk.Value, g, sPrime, full)
		set.Keys[g] = kg.genSwitchingKey(sk, sPrime)
	}
	return set
}

// RotationKeyFor fetches the switching key for a Galois element, with a
// descriptive error when the circuit requests a rotation that was not
// provisioned (the failure mode CHET's rotation-keys pass exists to prevent).
func (r *RotationKeySet) RotationKeyFor(galEl uint64) (*SwitchingKey, error) {
	if r == nil || r.Keys == nil {
		return nil, fmt.Errorf("ckks: no rotation keys provisioned")
	}
	k, ok := r.Keys[galEl]
	if !ok {
		return nil, fmt.Errorf("ckks: missing rotation key for Galois element %d", galEl)
	}
	return k, nil
}
