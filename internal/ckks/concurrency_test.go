package ckks

import (
	"sync"
	"testing"
)

// TestEvaluatorConcurrentUse hammers one shared evaluator from many
// goroutines with the scratch-hungry operations (Mul exercises keySwitch,
// RotateLeft exercises applyGalois, Rescale exercises the rescale row) and
// checks every worker observes exactly the result a serial run produces.
// Run with -race to validate the scratch-pool design.
func TestEvaluatorConcurrentUse(t *testing.T) {
	tc := newTestContext(t)
	slots := tc.params.Slots()
	rtks := tc.kgen.GenRotationKeys(tc.sk, []int{1, 3, slots - 3}, true)
	ev := NewEvaluator(tc.params, tc.rlk, rtks)

	va := randomVector(slots, 1, 61)
	vb := randomVector(slots, 1, 62)
	scale := tc.params.DefaultScale()
	cta := tc.encr.Encrypt(tc.enc.Encode(va, scale, tc.params.MaxLevel()))
	ctb := tc.encr.Encrypt(tc.enc.Encode(vb, scale, tc.params.MaxLevel()))

	// The serial reference result of the worker body.
	body := func(e *Evaluator) *Ciphertext {
		prod := e.Mul(cta, ctb)
		e.Rescale(prod)
		rot := e.RotateLeft(prod, 3)
		return e.Add(rot, e.RotateRight(rot, 3))
	}
	want := tc.enc.Decode(tc.decr.Decrypt(body(ev)))

	const workers = 8
	const iters = 4
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			e := ev
			if w%2 == 1 {
				// Odd workers use the explicit per-goroutine API.
				e = ev.ShallowCopy()
			}
			var out *Ciphertext
			for i := 0; i < iters; i++ {
				out = body(e)
			}
			results[w] = tc.enc.Decode(tc.decr.Decrypt(out))
		}(w)
	}
	wg.Wait()

	for w, got := range results {
		if d := maxAbsDiff(got, want); d != 0 {
			t.Fatalf("worker %d diverged from serial result (max abs diff %g)", w, d)
		}
	}
}
