package polyfit_test

import (
	"math"
	"testing"

	"chet/internal/circuit"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/polyfit"
	"chet/internal/tensor"
)

func TestChebyshevReconstructsPolynomials(t *testing.T) {
	// A degree-d Chebyshev fit of a degree-d polynomial is exact.
	f := func(x float64) float64 { return 3 - 2*x + 0.5*x*x*x }
	approx, err := polyfit.Chebyshev(f, -2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-2, -1.3, 0, 0.7, 2} {
		if math.Abs(approx.Eval(x)-f(x)) > 1e-9 {
			t.Fatalf("x=%g: got %g want %g", x, approx.Eval(x), f(x))
		}
	}
	want := []float64{3, -2, 0, 0.5}
	for i, c := range approx.C {
		if math.Abs(c-want[i]) > 1e-9 {
			t.Fatalf("coefficient %d = %g, want %g", i, c, want[i])
		}
	}
}

func TestChebyshevErrorDecreasesWithDegree(t *testing.T) {
	sig := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	prev := math.Inf(1)
	for _, d := range []int{2, 4, 8} {
		a, err := polyfit.Chebyshev(sig, -4, 4, d)
		if err != nil {
			t.Fatal(err)
		}
		e := a.MaxError(sig, 500)
		if e >= prev {
			t.Fatalf("degree %d error %g did not improve on %g", d, e, prev)
		}
		prev = e
	}
	if prev > 0.01 {
		t.Fatalf("degree-8 sigmoid error %g too large", prev)
	}
}

func TestNamedApproximations(t *testing.T) {
	relu, err := polyfit.ReLU(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e := relu.MaxError(func(x float64) float64 { return math.Max(0, x) }, 300); e > 0.25 {
		t.Fatalf("degree-4 ReLU error %g", e)
	}
	tanh, err := polyfit.Tanh(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e := tanh.MaxError(math.Tanh, 300); e > 0.05 {
		t.Fatalf("degree-5 tanh error %g", e)
	}
	sig, err := polyfit.Sigmoid(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Degree() != 3 {
		t.Fatalf("degree = %d", sig.Degree())
	}
}

func TestEvalCheckedDomainGuard(t *testing.T) {
	a, err := polyfit.Chebyshev(math.Sin, -2, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Inside the interval: matches Eval exactly, no error.
	for _, x := range []float64{-2, -0.5, 0, 1.7, 3} {
		got, err := a.EvalChecked(x)
		if err != nil {
			t.Fatalf("EvalChecked(%g) unexpectedly failed: %v", x, err)
		}
		if got != a.Eval(x) {
			t.Fatalf("EvalChecked(%g) = %g, Eval = %g", x, got, a.Eval(x))
		}
	}
	// Outside: loud error naming the interval.
	for _, x := range []float64{-2.001, 3.001, 100, math.Inf(1), math.NaN()} {
		if _, err := a.EvalChecked(x); err == nil {
			t.Fatalf("EvalChecked(%g) should have rejected out-of-domain input", x)
		}
	}
	if !a.InDomain(3) || a.InDomain(3.1) {
		t.Fatal("InDomain endpoints wrong")
	}
}

func TestChebyshevValidation(t *testing.T) {
	if _, err := polyfit.Chebyshev(math.Sin, 1, 1, 3); err == nil {
		t.Fatal("expected interval error")
	}
	if _, err := polyfit.Chebyshev(math.Sin, 0, 1, 0); err == nil {
		t.Fatal("expected degree error")
	}
	if _, err := polyfit.Chebyshev(math.Sin, 0, 1, 100); err == nil {
		t.Fatal("expected degree cap error")
	}
}

// TestPolyEvalKernelMatchesReference checks the full path: fit tanh,
// install as a PolyEval circuit op, execute homomorphically, compare.
func TestPolyEvalKernelMatchesReference(t *testing.T) {
	tanh, err := polyfit.Tanh(2, 5)
	if err != nil {
		t.Fatal(err)
	}

	b := circuit.NewBuilder("tanh-net")
	x := b.Input(2, 4, 4)
	filters := tensor.New(2, 2, 1, 1)
	filters.Data = []float64{0.5, 0.1, -0.2, 0.4}
	x = b.Conv2D(x, filters, nil, 1, 0, "mix")
	x = b.PolyEval(x, tanh.C, "tanh")
	c := b.Build(x)

	img := tensor.New(2, 4, 4)
	for i := range img.Data {
		img.Data[i] = 1.5 * math.Sin(float64(i))
	}
	want := c.Evaluate(img)

	for _, policy := range []htc.LayoutPolicy{htc.PolicyHW, htc.PolicyCHW} {
		back := hisa.NewRefBackend(256)
		sc := htc.DefaultScales()
		enc := htc.EncryptTensor(back, img, htc.PlanFor(c, policy), sc)
		got := htc.DecryptTensor(back, htc.Execute(back, c, enc, policy, sc))
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-6 {
				t.Fatalf("%v: element %d = %g, want %g", policy, i, got.Data[i], want.Data[i])
			}
		}
	}

	// Reference evaluation really approximates tanh.
	for i, v := range img.Data {
		mixed := 0.5*img.Data[i%16] + 0.1*img.Data[16+i%16] // not the real conv; just sanity on range
		_ = mixed
		_ = v
	}
	if d := c.MultiplicativeDepth(); d < 5 {
		t.Fatalf("degree-5 polynomial should cost >= 5 levels, got %d", d)
	}
}

// TestPolyEvalOnSimBackend confirms the Horner kernel survives the CKKS
// noise model with sensible scales.
func TestPolyEvalOnSimBackend(t *testing.T) {
	sig, err := polyfit.Sigmoid(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := circuit.NewBuilder("sig-net")
	x := b.Input(1, 4, 4)
	x = b.PolyEval(x, sig.C, "sigmoid")
	c := b.Build(x)

	img := tensor.New(1, 4, 4)
	for i := range img.Data {
		img.Data[i] = float64(i)/4 - 2
	}
	want := c.Evaluate(img)

	back := hisa.NewSimBackend(hisa.SimParams{LogN: 12, LogQ: 400, Seed: 9})
	sc := htc.Scales{Pc: math.Exp2(40), Pw: math.Exp2(30), Pu: math.Exp2(30), Pm: math.Exp2(25)}
	enc := htc.EncryptTensor(back, img, htc.PlanFor(c, htc.PolicyCHW), sc)
	got := htc.DecryptTensor(back, htc.Execute(back, c, enc, htc.PolicyCHW, sc))
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-3 {
			t.Fatalf("element %d = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}
