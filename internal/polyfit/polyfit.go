// Package polyfit approximates non-polynomial activation functions by
// low-degree polynomials, the preprocessing the paper assumes for circuits
// containing ReLU, sigmoid, or tanh (Section 2.2, citing CryptoNets): FHE
// schemes evaluate only additions and multiplications, so every activation
// must become a polynomial before CHET compiles the circuit.
//
// The fit is Chebyshev interpolation on a caller-chosen interval, converted
// to monomial coefficients for Horner evaluation under encryption.
package polyfit

import (
	"fmt"
	"math"
)

// Approximation is a polynomial p(x) = C[0] + C[1] x + ... + C[d] x^d valid
// on [A, B].
type Approximation struct {
	C    []float64
	A, B float64
}

// Degree returns the polynomial degree.
func (a *Approximation) Degree() int { return len(a.C) - 1 }

// Eval evaluates the polynomial at x by Horner's rule.
func (a *Approximation) Eval(x float64) float64 {
	acc := 0.0
	for i := len(a.C) - 1; i >= 0; i-- {
		acc = acc*x + a.C[i]
	}
	return acc
}

// InDomain reports whether x lies inside the fitted interval [A, B], with a
// tiny relative slack so values produced by float round-trips of the
// endpoints still count as inside.
func (a *Approximation) InDomain(x float64) bool {
	slack := 1e-9 * (a.B - a.A)
	return x >= a.A-slack && x <= a.B+slack
}

// EvalChecked evaluates the polynomial at x but fails loudly when x falls
// outside the fitted interval. Chebyshev interpolants diverge fast outside
// [A, B] — a degree-20 sine fit that is accurate to 1e-11 inside its range
// can be off by many orders of magnitude just past the endpoint — so callers
// whose correctness depends on the approximation (EvalMod in bootstrapping,
// plaintext lockstep references) should use this instead of Eval.
func (a *Approximation) EvalChecked(x float64) (float64, error) {
	if !a.InDomain(x) {
		return 0, fmt.Errorf("polyfit: input %g outside fitted interval [%g, %g] (degree %d); the approximation is meaningless out of range",
			x, a.A, a.B, a.Degree())
	}
	return a.Eval(x), nil
}

// MaxError samples the interval and returns the largest deviation from f.
func (a *Approximation) MaxError(f func(float64) float64, samples int) float64 {
	if samples < 2 {
		samples = 2
	}
	worst := 0.0
	for i := 0; i < samples; i++ {
		x := a.A + (a.B-a.A)*float64(i)/float64(samples-1)
		if e := math.Abs(a.Eval(x) - f(x)); e > worst {
			worst = e
		}
	}
	return worst
}

// Chebyshev fits f on [a, b] with a degree-d Chebyshev interpolant and
// returns it in monomial form. Degrees up to ~16 are numerically safe in
// float64; homomorphic circuits rarely exceed degree 8 because every degree
// costs multiplicative depth.
func Chebyshev(f func(float64) float64, a, b float64, degree int) (*Approximation, error) {
	if degree < 1 || degree > 24 {
		return nil, fmt.Errorf("polyfit: degree %d out of supported range [1, 24]", degree)
	}
	if !(b > a) {
		return nil, fmt.Errorf("polyfit: invalid interval [%g, %g]", a, b)
	}
	n := degree + 1

	// Chebyshev nodes on [a, b] and function samples.
	fx := make([]float64, n)
	for k := 0; k < n; k++ {
		t := math.Cos(math.Pi * (float64(k) + 0.5) / float64(n))
		x := 0.5*(b-a)*t + 0.5*(b+a)
		fx[k] = f(x)
	}

	// Chebyshev coefficients c_j = (2/n) * sum_k fx[k] T_j(t_k).
	cheb := make([]float64, n)
	for j := 0; j < n; j++ {
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += fx[k] * math.Cos(math.Pi*float64(j)*(float64(k)+0.5)/float64(n))
		}
		cheb[j] = 2 * sum / float64(n)
	}
	cheb[0] /= 2

	// Convert sum_j cheb[j] T_j(t) with t = (2x - (a+b)) / (b-a) to
	// monomials in x. Build T_j in t-monomials via the recurrence, then
	// substitute the affine map.
	tPolys := make([][]float64, n)
	tPolys[0] = []float64{1}
	if n > 1 {
		tPolys[1] = []float64{0, 1}
	}
	for j := 2; j < n; j++ {
		prev, prev2 := tPolys[j-1], tPolys[j-2]
		cur := make([]float64, j+1)
		for i, v := range prev {
			cur[i+1] += 2 * v
		}
		for i, v := range prev2 {
			cur[i] -= v
		}
		tPolys[j] = cur
	}

	inT := make([]float64, n)
	for j := 0; j < n; j++ {
		for i, v := range tPolys[j] {
			inT[i] += cheb[j] * v
		}
	}

	// Substitute t = alpha*x + beta.
	alpha := 2 / (b - a)
	beta := -(a + b) / (b - a)
	out := make([]float64, n)
	// Horner in polynomial space: out = inT[n-1]; out = out*(alpha x + beta) + inT[i]
	poly := []float64{inT[n-1]}
	for i := n - 2; i >= 0; i-- {
		next := make([]float64, len(poly)+1)
		for k, v := range poly {
			next[k+1] += v * alpha
			next[k] += v * beta
		}
		next[0] += inT[i]
		poly = next
	}
	copy(out, poly)

	return &Approximation{C: out, A: a, B: b}, nil
}

// ReLU returns a degree-d approximation of max(0, x) on [-r, r].
func ReLU(r float64, degree int) (*Approximation, error) {
	return Chebyshev(func(x float64) float64 { return math.Max(0, x) }, -r, r, degree)
}

// Sigmoid returns a degree-d approximation of 1/(1+e^-x) on [-r, r].
func Sigmoid(r float64, degree int) (*Approximation, error) {
	return Chebyshev(func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }, -r, r, degree)
}

// Tanh returns a degree-d approximation of tanh(x) on [-r, r].
func Tanh(r float64, degree int) (*Approximation, error) {
	return Chebyshev(math.Tanh, -r, r, degree)
}
