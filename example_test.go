package chet_test

import (
	"fmt"

	"chet"
)

// ExampleCompile shows the compiler's decisions for a hand-built circuit.
func ExampleCompile() {
	b := chet.NewCircuit("demo")
	x := b.Input(1, 8, 8)
	filters := chet.NewTensor(2, 1, 3, 3)
	for i := range filters.Data {
		filters.Data[i] = 0.1
	}
	x = b.Conv2D(x, filters, nil, 1, 0, "conv")
	x = b.Activation(x, 0.25, 1, "act")
	c := b.Build(x)

	compiled, err := chet.Compile(c, chet.Options{Scheme: chet.SchemeCKKS})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("128-bit secure: %v, rotation keys selected: %v\n",
		compiled.Best.LogQ > 0 && compiled.Best.LogN >= 12,
		len(compiled.Best.Rotations) > 0)
	// Output: 128-bit secure: true, rotation keys selected: true
}

// ExampleSession runs one encrypted inference end to end on the CKKS noise
// model and reports whether the encrypted prediction matches plaintext
// inference.
func ExampleSession() {
	model, _ := chet.Model("LeNet-tiny")
	compiled, _ := chet.Compile(model.Circuit, chet.Options{Scheme: chet.SchemeCKKS})
	session, _ := chet.NewSession(compiled, nil)

	img := chet.SyntheticImage(model.InputShape, 7)
	pred := session.Run(img)
	want := model.Circuit.Evaluate(img)
	fmt.Println("prediction preserved:", pred.ArgMax() == want.ArgMax())
	// Output: prediction preserved: true
}
