#!/usr/bin/env bash
# ci.sh — the repository's tier-1 gate plus the race-detector pass over the
# concurrency-sensitive packages (evaluator scratch pools, worker-pool
# kernels, atomic op meter). Run before every commit.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency-sensitive packages)"
go test -race ./internal/hisa/... ./internal/htc/... ./internal/ckks/...

echo "== go test -race (serving subsystem: wire protocol + batch coalescer + server engine)"
go test -race ./internal/serve/... ./internal/wire/... ./internal/batch/...

echo "== go test -race (telemetry: tracer ring, scope stack, trace-context propagation, metrics snapshots)"
go test -race ./internal/telemetry/... ./internal/serve/...

echo "== go test -race (fleet: hash ring churn, registry merge, router + 2 workers, batched e2e, cross-process trace stitching, /metrics scrape)"
go test -race ./internal/fleet/... ./cmd/chet-router

echo "== observability smoke (/metrics exposition + pprof against a live chet-serve)"
go test -run=TestObservabilityEndpoints ./cmd/chet-serve

echo "== observability smoke (chet-router /metrics scrape + merged /trace fetch against a live fleet)"
go test -run=TestRouterObservabilityEndpoints ./cmd/chet-router

echo "== fuzz smoke (wire decoders are total over adversarial bytes)"
go test -fuzz=FuzzWireFrame -fuzztime=5s ./internal/wire

echo "== fuzz smoke (fleet control-frame decoders are total over adversarial bytes)"
go test -fuzz=FuzzControlFrame -fuzztime=5s ./internal/wire

echo "== ring alloc gate (pooled arena kernels stay at 0 allocs/op)"
go test -run=TestRingKernelAllocs -count=1 ./internal/ring

echo "== bench smoke (ring kernels compile and run; -benchmem shows the alloc contract)"
go test -run=NONE -bench=. -benchtime=1x -benchmem ./internal/ring

echo "== bench smoke (ring rewrite: fused key-switch protocol on a tiny ring)"
go test -run=TestRingBenchSmoke ./internal/bench

echo "== chet-bench ring smoke (production parameters, no artifact write)"
go run ./cmd/chet-bench -exp ring -ringout ""

echo "== bench smoke (served batching throughput sweeps a tiny instance)"
go test -run=TestBatchingBenchSmoke ./internal/bench

echo "== bench smoke (complex packing vs real batching at equal ring size)"
go test -run=TestPackingBenchSmoke ./internal/bench

echo "== bench smoke (sharded fleet: 1->2 workers behind a router + kill-one-worker failover)"
go test -run=TestFleetBenchSmoke ./internal/bench

echo "== go test -race (bootstrapping: pipeline, Refresher triggers, arena leak gate)"
go test -race ./internal/boot/...

echo "== bench smoke (deep-MLP bootstrap: placement parity + precision on a tiny ring)"
go test -run=TestBootstrapBenchSmoke -timeout=600s ./internal/bench

echo "== bench smoke (fleet observability: traced-vs-untraced bit-exactness + cross-process trace stitching)"
go test -run=TestObsBenchSmoke -timeout=600s ./internal/bench

echo "CI OK"
