package chet

import (
	"math"
	"strings"
	"testing"

	"chet/internal/ring"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	model, err := Model("LeNet-5-small")
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := Compile(model.Circuit, Options{Scheme: SchemeCKKS})
	if err != nil {
		t.Fatal(err)
	}
	session, err := NewSession(compiled, nil)
	if err != nil {
		t.Fatal(err)
	}
	img := SyntheticImage(model.InputShape, 7)
	want := model.Circuit.Evaluate(img)
	got := session.Run(img)
	if got.Size() != want.Size() {
		t.Fatalf("output size %d want %d", got.Size(), want.Size())
	}
	maxErr := 0.0
	for i := range want.Data {
		if e := math.Abs(got.Data[i] - want.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.05 {
		t.Fatalf("encrypted inference deviates by %g from plaintext", maxErr)
	}
	// The classification decision survives encryption.
	if got.ArgMax() != want.ArgMax() {
		t.Fatalf("encrypted argmax %d != plaintext argmax %d", got.ArgMax(), want.ArgMax())
	}
}

func TestPublicAPIBuildCustomCircuit(t *testing.T) {
	b := NewCircuit("custom")
	x := b.Input(1, 6, 6)
	filters := NewTensor(2, 1, 3, 3)
	for i := range filters.Data {
		filters.Data[i] = 0.1
	}
	x = b.Conv2D(x, filters, nil, 1, 0, "conv")
	x = b.Activation(x, 0.25, 1, "act")
	c := b.Build(x)

	compiled, err := Compile(c, Options{Scheme: SchemeRNS})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Best.LogN == 0 {
		t.Fatal("no parameters selected")
	}
	desc := Describe(compiled)
	for _, needle := range []string{"custom", "RNS", "rotation keys", "best layout policy"} {
		if !strings.Contains(desc, needle) {
			t.Fatalf("Describe output missing %q:\n%s", needle, desc)
		}
	}
}

func TestPublicAPIRealCryptoTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice execution is slow; run without -short")
	}
	model, err := Model("LeNet-tiny")
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := Compile(model.Circuit, Options{
		Scheme:       SchemeRNS,
		SecurityBits: -1, // small demo ring
		MinLogN:      11,
		MaxLogN:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	session, err := NewSession(compiled, ring.NewTestPRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	img := SyntheticImage(model.InputShape, 9)
	want := model.Circuit.Evaluate(img)
	got := session.Run(img)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-2 {
			t.Fatalf("output %d: got %g want %g", i, got.Data[i], want.Data[i])
		}
	}
}
